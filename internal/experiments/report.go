package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// RenderFig4 prints the feature-size sweep as a matrix (hosts x sizes),
// mirroring the paper's grouped bars.
func RenderFig4(w io.Writer, rows []Fig4Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	hosts := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Host] {
			seen[r.Host] = true
			hosts = append(hosts, r.Host)
		}
	}
	fmt.Fprintf(tw, "feature size")
	for _, h := range hosts {
		fmt.Fprintf(tw, "\t%s", h)
	}
	fmt.Fprintln(tw)
	for _, size := range Fig4FeatureSizes {
		fmt.Fprintf(tw, "%d", size)
		for _, h := range hosts {
			for _, r := range rows {
				if r.Host == h && r.FeatureSize == size {
					fmt.Fprintf(tw, "\t%.1f%%", 100*r.Accuracy)
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig4CSV writes the sweep as CSV.
func Fig4CSV(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "host,feature_size,accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%d,%.4f\n", r.Host, r.FeatureSize, r.Accuracy)
	}
}

// RenderCampaign prints both panels of a Fig. 5/6 campaign as attempt
// series per classifier.
func RenderCampaign(w io.Writer, res *CampaignResult, classifiers []string) {
	kind := "offline"
	if res.Online {
		kind = "online"
	}
	renderPanel := func(title string, panel []AttemptPoint) {
		fmt.Fprintf(w, "%s (%s-type HID)\n", title, kind)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "attempt")
		for _, c := range classifiers {
			fmt.Fprintf(tw, "\t%s", c)
		}
		fmt.Fprintln(tw)
		byKey := map[string]AttemptPoint{}
		maxAttempt := 0
		for _, p := range panel {
			byKey[fmt.Sprintf("%s/%d", p.Classifier, p.Attempt)] = p
			if p.Attempt > maxAttempt {
				maxAttempt = p.Attempt
			}
		}
		for a := 1; a <= maxAttempt; a++ {
			fmt.Fprintf(tw, "%d", a)
			for _, c := range classifiers {
				if p, ok := byKey[fmt.Sprintf("%s/%d", c, a)]; ok {
					fmt.Fprintf(tw, "\t%.1f%%", 100*p.Accuracy)
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	renderPanel("(a) original Spectre", res.Plain)
	fmt.Fprintln(w)
	renderPanel("(b) CR-Spectre", res.CR)
	fmt.Fprintf(w, "\nCR panel: mean %.1f%%, min %.1f%%\n", 100*MeanAccuracy(res.CR), 100*MinAccuracy(res.CR))
}

// CampaignCSV writes both panels as CSV.
func CampaignCSV(w io.Writer, res *CampaignResult) {
	fmt.Fprintln(w, "panel,classifier,attempt,accuracy,verdict,variant,recovered")
	emit := func(panel string, pts []AttemptPoint) {
		for _, p := range pts {
			variant := strings.ReplaceAll(p.Variant, ",", ";")
			fmt.Fprintf(w, "%s,%s,%d,%.4f,%s,%s,%t\n", panel, p.Classifier, p.Attempt, p.Accuracy, p.Verdict, variant, p.Recovered)
		}
	}
	emit("spectre", res.Plain)
	emit("cr-spectre", res.CR)
}

// RenderTable1 prints the IPC overhead table in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tOriginal (IPC)\tCR-Spectre offline-HID (IPC)\tCR-Spectre online-HID (IPC)\toverhead off\toverhead on")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.2f%%\t%.2f%%\n",
			r.Benchmark, r.IPCOriginal, r.IPCOffline, r.IPCOnline,
			100*r.OverheadOffline, 100*r.OverheadOnline)
	}
	tw.Flush()
	off, on := MeanOverheads(rows)
	fmt.Fprintf(w, "mean perturbation overhead: offline %.2f%%, online %.2f%%\n", 100*off, 100*on)
}

// Table1CSV writes the overhead table as CSV.
func Table1CSV(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "benchmark,ipc_original,ipc_offline,ipc_online,overhead_offline,overhead_online")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			r.Benchmark, r.IPCOriginal, r.IPCOffline, r.IPCOnline, r.OverheadOffline, r.OverheadOnline)
	}
}
