package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/hid"
	"repro/internal/mibench"
	"repro/internal/ml"
	"repro/internal/perturb"
	"repro/internal/pmu"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/trace"
)

// LatencyRow reports how quickly one online detector adapted to a fresh
// perturbation variant it had never seen.
type LatencyRow struct {
	Classifier string
	Variant    string
	// BatchesToDetect is the number of observe/retrain rounds before
	// accuracy exceeded the 80% detection threshold (-1 = never within
	// the budget). Round 1 is the first encounter.
	BatchesToDetect int
	// Trajectory is the accuracy after each round.
	Trajectory []float64
}

// DetectionLatency is an extension experiment beyond the paper's plots:
// it quantifies the online HID's reaction time — the window during which
// a freshly mutated CR-Spectre variant exfiltrates undetected before
// retraining catches it. That window is exactly what the paper's
// attacker exploits by mutating again once caught.
func DetectionLatency(cfg Config, maxBatches int) ([]LatencyRow, error) {
	if maxBatches <= 0 {
		maxBatches = 6
	}
	benign, err := cfg.BenignCorpus(mibench.AllWithBackgrounds(), cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	attackTrain, err := cfg.AttackCorpus(cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	train := benign.Project(cfg.FeatureSize)
	if err := train.Merge(attackTrain.Project(cfg.FeatureSize)); err != nil {
		return nil, err
	}
	benignEval := benign.Project(cfg.FeatureSize)
	host, err := mibench.ByName("math")
	if err != nil {
		return nil, err
	}

	// Each classifier's adaptation race is self-contained (own detector,
	// own variant, own seed stream), so the classifiers fan out across
	// the pool; within one classifier the observe/retrain rounds remain
	// inherently sequential.
	return sched.Map(cfg.ctx("latency"), cfg.workers(), len(cfg.Classifiers),
		func(_ context.Context, i int) (LatencyRow, error) {
			name := cfg.Classifiers[i]
			clf, ok := ml.ByName(name, cfg.Seed+int64(i))
			if !ok {
				return LatencyRow{}, fmt.Errorf("latency: unknown classifier %q", name)
			}
			det := hid.NewOnline(clf)
			if err := det.Train(train.Data); err != nil {
				return LatencyRow{}, err
			}
			// A fresh variant the detector has never observed, with heavy
			// dispersion so it starts in evading territory.
			rng := rand.New(rand.NewSource(cfg.Seed + 7000 + int64(i)))
			variant := perturb.Paper().Mutate(rng)
			variant.Delay = 100 + rng.Int63n(100)
			pd := int64(200 + rng.Int63n(200))

			row := LatencyRow{Classifier: name, Variant: variant.String(), BatchesToDetect: -1}
			for batch := 1; batch <= maxBatches; batch++ {
				cr, err := cfg.crRun(host, AttackSpec{
					Variant:    spectre.Variants()[(batch-1)%len(spectre.Variants())],
					Perturb:    &variant,
					ProbeDelay: pd,
				}, cfg.Seed*31+int64(batch)+int64(i)*977)
				if err != nil {
					return LatencyRow{}, err
				}
				crSet := trace.NewSet(pmu.AllEvents())
				crSet.AddNoisy("cr", trace.LabelAttack, cr.Samples, cfg.NoiseSigma, cfg.Seed+int64(batch))
				eval := cfg.evalMix(crSet.Project(cfg.FeatureSize), benignEval, cfg.Seed+int64(batch)*13)
				acc := det.Accuracy(eval.Data)
				row.Trajectory = append(row.Trajectory, acc)
				if acc > hid.DetectThreshold && row.BatchesToDetect < 0 {
					row.BatchesToDetect = batch
					break
				}
				if err := det.Observe(eval.Data); err != nil {
					return LatencyRow{}, err
				}
			}
			return row, nil
		})
}

// RenderLatency prints the detection-latency table.
func RenderLatency(w io.Writer, rows []LatencyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "classifier\tbatches to detect\taccuracy trajectory")
	for _, r := range rows {
		det := "never"
		if r.BatchesToDetect > 0 {
			det = fmt.Sprintf("%d", r.BatchesToDetect)
		}
		traj := ""
		for i, a := range r.Trajectory {
			if i > 0 {
				traj += " -> "
			}
			traj += fmt.Sprintf("%.0f%%", 100*a)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Classifier, det, traj)
	}
	tw.Flush()
}
