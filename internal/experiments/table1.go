package experiments

import (
	"context"
	"fmt"

	"repro/internal/mibench"
	"repro/internal/perturb"
	"repro/internal/sched"
	"repro/internal/spectre"
)

// Table1Row is one benchmark row of Table I: IPC of the original
// application, and of the CR-Spectre campaign against an offline-type
// and an online-type HID. Overheads are relative to the ROP-injected
// plain-Spectre baseline, matching the paper's accounting ("compared to
// the Spectre-only attack without dynamic perturbations").
type Table1Row struct {
	Benchmark       string
	IPCOriginal     float64
	IPCOffline      float64
	IPCOnline       float64
	OverheadOffline float64 // fractional IPC loss of offline-mode perturbation
	OverheadOnline  float64
}

// Table1Workloads returns the paper's five benchmark rows at sizes
// where the host workload dominates the injected attack — the regime in
// which the paper's sub-2%% IPC deltas arise. (A tiny host under a long
// attack shows large IPC shifts in either direction, which is an
// artefact of the ratio, not of the perturbation.)
func Table1Workloads() []mibench.Workload {
	return []mibench.Workload{
		mibench.Math(16_000),
		mibench.Bitcount("bitcount_50M", 100_000),
		mibench.Bitcount("bitcount_100M", 200_000),
		mibench.SHA1(800),
		mibench.SHA2(800),
	}
}

// Table1 reproduces the IPC overhead table over the paper's five
// benchmark rows. Expected shape: the three IPC columns per row agree
// within a few percent, and both overhead columns stay small (paper:
// 0.6% offline, 1.1% online on average), because the perturbation adds
// little work relative to the host workload.
func Table1(cfg Config) ([]Table1Row, error) {
	return Table1For(cfg, Table1Workloads())
}

// Table1For runs the overhead measurement over a custom workload list.
// Every benchmark row is an independent pool task, and within a row the
// per-cell repetitions fan out too; the per-rep seed schedule matches
// the sequential implementation, so the table is byte-identical for any
// Workers setting.
func Table1For(cfg Config, workloads []mibench.Workload) ([]Table1Row, error) {
	return sched.Map(cfg.ctx("table1"), cfg.workers(), len(workloads),
		func(_ context.Context, i int) (Table1Row, error) {
			w := workloads[i]
			row := Table1Row{Benchmark: w.Name}

			orig, err := cfg.avgIPC(func(seed int64) (float64, error) {
				_, m, err := cfg.benignRun(w, seed)
				if err != nil {
					return 0, err
				}
				return m.CPU.IPC(), nil
			})
			if err != nil {
				return row, fmt.Errorf("table1 %s original: %w", w.Name, err)
			}
			row.IPCOriginal = orig

			// Baseline: ROP-injected Spectre without perturbation.
			base, err := cfg.avgCRIPC(w, AttackSpec{Variant: spectre.V1BoundsCheck})
			if err != nil {
				return row, fmt.Errorf("table1 %s baseline: %w", w.Name, err)
			}

			// Offline mode: the single static Algorithm-2 variant.
			offV := perturb.Paper()
			off, err := cfg.avgCRIPC(w, AttackSpec{Variant: spectre.V1BoundsCheck, Perturb: &offV})
			if err != nil {
				return row, fmt.Errorf("table1 %s offline: %w", w.Name, err)
			}
			row.IPCOffline = off

			// Online mode: a mutated variant with dispersion, as the
			// adaptive campaign would deploy.
			onV := perturb.Scaled(2)
			onV.Delay = 60
			on, err := cfg.avgCRIPC(w, AttackSpec{Variant: spectre.V1BoundsCheck, Perturb: &onV, ProbeDelay: 40})
			if err != nil {
				return row, fmt.Errorf("table1 %s online: %w", w.Name, err)
			}
			row.IPCOnline = on

			if base > 0 {
				row.OverheadOffline = (base - off) / base
				row.OverheadOnline = (base - on) / base
			}
			return row, nil
		})
}

func (cfg Config) avgIPC(run func(seed int64) (float64, error)) (float64, error) {
	reps := cfg.Reps
	if reps <= 0 {
		reps = 3
	}
	vals, err := sched.Map(cfg.ctx("table1-reps"), cfg.workers(), reps,
		func(_ context.Context, r int) (float64, error) {
			return run(cfg.Seed + int64(r)*337)
		})
	if err != nil {
		return 0, err
	}
	// Accumulate in rep order: summation order is part of the
	// byte-identical contract.
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(reps), nil
}

func (cfg Config) avgCRIPC(w mibench.Workload, spec AttackSpec) (float64, error) {
	return cfg.avgIPC(func(seed int64) (float64, error) {
		cr, err := cfg.crRun(w, spec, seed)
		if err != nil {
			return 0, err
		}
		if !cr.Injected {
			return 0, fmt.Errorf("injection failed on %s", w.Name)
		}
		return cr.Machine.CPU.IPC(), nil
	})
}

// MeanOverheads averages the two overhead columns across rows — the
// paper's headline "0.6% and 1.1%" aggregate.
func MeanOverheads(rows []Table1Row) (offline, online float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	for _, r := range rows {
		offline += r.OverheadOffline
		online += r.OverheadOnline
	}
	n := float64(len(rows))
	return offline / n, online / n
}
