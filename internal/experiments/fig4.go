package experiments

import (
	"context"
	"fmt"

	"repro/internal/mibench"
	"repro/internal/ml"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Fig4FeatureSizes are the monitored-feature counts the paper sweeps.
var Fig4FeatureSizes = []int{16, 8, 4, 2, 1}

// Fig4Hosts returns the four benign applications of Fig. 4's legend
// (Spectre_1 = Math, per Table I's first row; the others are further
// MiBench members).
func Fig4Hosts() []mibench.Workload {
	return []mibench.Workload{
		mibench.Math(300),
		mibench.Bitcount("bitcount_50M", 20_000),
		mibench.SHA1(40),
		mibench.Qsort(384),
	}
}

// Fig4Row is one bar of Fig. 4: HID accuracy distinguishing one benign
// host from the (variant-averaged) Spectre attack at one feature size.
type Fig4Row struct {
	Host        string
	FeatureSize int
	Accuracy    float64
}

// Fig4 reproduces the feature-size sweep: for each benign host and each
// feature count, train the HID (MLP, like the paper's primary detector)
// on host-vs-Spectre traces and report test accuracy. Expected shape:
// >80-90% for sizes >= 2, collapse toward chance at size 1.
//
// Both stages fan out: the per-host benign corpora build concurrently
// (each corpus is itself parallel over its workload list), then every
// (feature size, host) training cell runs as an independent pool task.
// Row order and values match the sequential sweep exactly.
func Fig4(cfg Config) ([]Fig4Row, error) {
	attack, err := cfg.AttackCorpus(cfg.SamplesPerClass)
	if err != nil {
		return nil, fmt.Errorf("fig4: attack corpus: %w", err)
	}
	hosts := Fig4Hosts()
	benign, err := sched.Map(cfg.ctx("fig4-benign"), cfg.workers(), len(hosts),
		func(_ context.Context, i int) (*trace.Set, error) {
			// The benign class is the host plus the background applications
			// (the paper's "browsers, text editors, etc." profiling scope).
			apps := append([]mibench.Workload{hosts[i]}, mibench.Backgrounds()...)
			b, err := cfg.BenignCorpus(apps, cfg.SamplesPerClass)
			if err != nil {
				return nil, fmt.Errorf("fig4: benign corpus %s: %w", hosts[i].Name, err)
			}
			return b, nil
		})
	if err != nil {
		return nil, err
	}

	rows, err := sched.Map(cfg.ctx("fig4-sweep"), cfg.workers(), len(Fig4FeatureSizes)*len(hosts),
		func(_ context.Context, cell int) (Fig4Row, error) {
			size := Fig4FeatureSizes[cell/len(hosts)]
			i := cell % len(hosts)
			w := hosts[i]
			full := benign[i].Project(size)
			if err := full.Merge(attack.Project(size)); err != nil {
				return Fig4Row{}, err
			}
			train, test := full.Data.Split(0.7, cfg.Seed+int64(size)*31+int64(i))
			clf := ml.NewMLP(cfg.Seed + int64(i))
			var sc ml.Scaler
			if err := clf.Fit(sc.FitTransform(train.X), train.Y); err != nil {
				return Fig4Row{}, fmt.Errorf("fig4: fit %s/%d: %w", w.Name, size, err)
			}
			acc := ml.EvaluateAccuracy(clf, sc.Transform(test.X), test.Y)
			return Fig4Row{Host: w.Name, FeatureSize: size, Accuracy: acc}, nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
