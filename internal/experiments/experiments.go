// Package experiments reproduces the paper's evaluation (§III): the
// feature-size sweep of Fig. 4, the offline- and online-HID attack
// campaigns of Figs. 5 and 6, and the IPC overhead table (Table I). Each
// experiment builds fresh simulated machines, profiles them through the
// PMU sampler, and feeds labelled traces to the HID detectors.
//
// Scale note: trace counts, workload sizes and attempt structure follow
// the paper, but sizes are scaled to simulator throughput (documented in
// EXPERIMENTS.md). The *shape* of each result — who wins, the evasion
// thresholds, the degradation trends — is the reproduction target, not
// absolute accuracy percentages on the authors' i5 testbed.
//
// Parallelism: every driver fans its independent machine runs out
// through the internal/sched worker pool, with per-task seeds derived
// via sched.DeriveSeed so results are byte-identical for any Workers
// setting (the golden determinism tests enforce this).
package experiments

import (
	"context"

	"fmt"

	"repro/internal/cpu"
	"repro/internal/gadget"
	"repro/internal/isa"
	"repro/internal/mibench"
	"repro/internal/perturb"
	"repro/internal/pmu"
	"repro/internal/rop"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Load bases for the three images of a scenario machine.
const (
	hostBase   = 0x100000
	targetBase = 0x300000
	attackBase = 0x600000
)

// Config parameterises every experiment.
type Config struct {
	// FeatureSize is the number of HPC features the HID monitors
	// (the paper settles on 4 for runtime monitoring).
	FeatureSize int
	// Interval is the PMU sampling period in cycles.
	Interval uint64
	// SamplesPerClass is the trace count per class for training corpora
	// (the paper collects 2000; the default here is smaller for CI —
	// raise it via the cmd flags for paper-scale runs).
	SamplesPerClass int
	// Attempts is the number of attack attempts plotted (paper: 10).
	Attempts int
	// Seed drives every stochastic component.
	Seed int64
	// Secret is the value the attack steals.
	Secret string
	// NoiseSigma is the relative system-noise jitter on sampled vectors.
	NoiseSigma float64
	// Budget is the per-run instruction budget.
	Budget uint64
	// CPU configures the simulated core.
	CPU cpu.Config
	// Classifiers lists the detector families to evaluate.
	Classifiers []string
	// Reps is the per-cell repetition count for Table I averaging
	// (the paper iterates 100 times on hardware; layout randomisation
	// is the simulator's run-to-run variation). Zero means 3.
	Reps int
	// Workers bounds the experiment engine's fan-out: the number of
	// simulated machines run concurrently. Zero or negative selects
	// runtime.GOMAXPROCS(0). Results are byte-identical for every
	// value — parallelism never changes the numbers, only the
	// wall-clock.
	Workers int
	// Telemetry, when non-nil, is attached to every machine the drivers
	// build (and to the worker pool): each core streams typed events
	// into the shared recorder. Per-kind event totals stay deterministic
	// for any Workers value; ring *contents* interleave.
	Telemetry *telemetry.Recorder
	// Metrics, when non-nil, accumulates named counters (pool stats,
	// end-of-run PMU publication) for the run manifest.
	Metrics *telemetry.Registry
	// Tracker, when non-nil, aggregates per-pool campaign progress
	// (lifecycle counts, task latencies, instruction throughput) for the
	// obs server's /progress endpoint and the manifest's final progress
	// snapshot. Nil keeps the scheduler on its nil-check-only fast path.
	Tracker *sched.Tracker
	// BaseCtx, when non-nil, is the parent context of every worker pool
	// the drivers spin up — the crspectred daemon's per-job cancellation
	// path (cancel requests and graceful drain propagate through it into
	// sched.Map). Nil keeps context.Background(), the CLI behaviour
	// where interruption means killing the process. Cancellation only
	// changes *whether* a run completes, never its results: a run that
	// finishes is byte-identical with or without a BaseCtx.
	BaseCtx context.Context
}

// workers resolves the configured fan-out width.
func (cfg Config) workers() int { return sched.Workers(cfg.Workers) }

// ctx returns the context experiment drivers hand to the worker pool,
// carrying the configured telemetry sinks plus the named progress pool
// (all nil-safe; an absent tracker hands the pool carrier a nil pool).
func (cfg Config) ctx(pool string) context.Context {
	base := cfg.BaseCtx
	if base == nil {
		base = context.Background()
	}
	ctx := telemetry.WithRegistry(
		telemetry.NewContext(base, cfg.Telemetry), cfg.Metrics)
	return sched.WithPool(ctx, cfg.Tracker.Pool(pool))
}

// DefaultConfig returns the configuration used by the cmd tools.
func DefaultConfig() Config {
	return Config{
		FeatureSize:     4,
		Interval:        20_000,
		SamplesPerClass: 400,
		Attempts:        10,
		Seed:            1,
		Secret:          "SPECTRE_PoC_42",
		NoiseSigma:      0.04,
		Budget:          400_000_000,
		CPU:             cpu.DefaultConfig(),
		Classifiers:     []string{"mlp", "nn", "lr", "svm"},
	}
}

// machine builds a fresh simulated computer with ASLR seeded for
// run-to-run layout variation.
func (cfg Config) machine(seed int64) *vm.Machine {
	mc := vm.DefaultConfig()
	mc.CPU = cfg.CPU
	mc.ASLR = true
	mc.ASLRSeed = seed
	mc.Telemetry = cfg.Telemetry
	m := vm.New(mc)
	if cfg.Telemetry != nil {
		// Annotate each mapped image: if it carries the covert-channel
		// probe array, register its (ASLR-slid) window with this core.
		m.OnLoad = func(name string, img *isa.Image) {
			spectre.AnnotateProbe(m.CPU, img)
		}
	}
	return m
}

// sampler profiles the full 56-event catalogue; experiments project to
// the wanted feature size afterwards.
func (cfg Config) sampler() *pmu.Sampler {
	return &pmu.Sampler{Interval: cfg.Interval, Events: pmu.AllEvents()}
}

// publishBlocks folds a finished machine's block-cache counters into the
// metrics registry under "blocks.". Called at every run choke point so
// the manifest reports how much of a campaign the superblock tier
// actually served; Add-only counters keep the totals Workers-invariant.
func (cfg Config) publishBlocks(m *vm.Machine) {
	pmu.PublishBlocks(cfg.Metrics, "blocks.", m.CPU.BlockStats())
}

// benignRun executes one workload host with a benign argument and
// returns its samples plus the finished machine (for counters/IPC).
func (cfg Config) benignRun(w mibench.Workload, seed int64) ([]pmu.Sample, *vm.Machine, error) {
	mod, err := w.HostModule(rop.HostOptions{Secret: cfg.Secret})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s: %w", w.Name, err)
	}
	m := cfg.machine(seed)
	m.Register(w.Name, mod, hostBase)
	if _, err := m.Load(w.Name); err != nil {
		return nil, nil, err
	}
	if _, err := m.SetArg([]byte("benign")); err != nil {
		return nil, nil, err
	}
	if err := m.Start(w.Name); err != nil {
		return nil, nil, err
	}
	samples, err := cfg.sampler().Run(m.CPU, cfg.Budget)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: benign %s: %w", w.Name, err)
	}
	cfg.publishBlocks(m)
	return samples, m, nil
}

// holderModule is the standalone-scenario target application holding the
// secret (Fig. 2b's separate victim).
func holderModule(secret string) *isa.Module {
	return isa.MustAssemble(fmt.Sprintf("halt\n.data\n.align 64\n__secret: .asciz %q\n", secret))
}

// AttackSpec bundles the attacker-controlled knobs of one run.
type AttackSpec struct {
	Variant    spectre.Variant
	Perturb    *perturb.Params // nil = no perturbation (plain Spectre)
	ProbeDelay int64           // probe-scan dispersion iterations
	Rounds     int             // voting-receiver rounds (0/1 = single)
	// HistoryMatched enables history-smashed mistraining (v1 only),
	// the counter-move to gshare-style history-indexed predictors.
	HistoryMatched bool
}

func (a AttackSpec) perturbAsm() string {
	if a.Perturb == nil {
		return perturb.None()
	}
	return a.Perturb.Asm()
}

// standaloneRun launches the attack as its own application against a
// separate secret-holder image — the paper's "traditional Spectre"
// baseline (Fig. 2b).
func (cfg Config) standaloneRun(spec AttackSpec, seed int64) ([]pmu.Sample, *vm.Machine, error) {
	m := cfg.machine(seed)
	m.Register("target", holderModule(cfg.Secret), targetBase)
	img, err := m.Load("target")
	if err != nil {
		return nil, nil, err
	}
	att := spectre.Config{
		Variant:        spec.Variant,
		TargetAddr:     img.MustSymbol("__secret"),
		SecretLen:      len(cfg.Secret),
		PerturbAsm:     spec.perturbAsm(),
		ProbeDelay:     spec.ProbeDelay,
		Rounds:         spec.Rounds,
		HistoryMatched: spec.HistoryMatched,
	}
	mod, err := att.Module()
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: assemble attack: %w", err)
	}
	m.Register("spectre", mod, attackBase)
	if _, err := m.Load("spectre"); err != nil {
		return nil, nil, err
	}
	if err := m.Start("spectre"); err != nil {
		return nil, nil, err
	}
	samples, err := cfg.sampler().Run(m.CPU, cfg.Budget)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: standalone spectre: %w", err)
	}
	cfg.publishBlocks(m)
	return samples, m, nil
}

// CRResult reports one CR-Spectre campaign run.
type CRResult struct {
	Samples    []pmu.Sample
	Recovered  string // bytes the covert channel produced
	Machine    *vm.Machine
	Injected   bool // the ROP chain exec'd the attack binary
	ChainWords int  // length of the injected ROP chain in stack words
}

// crRun performs the full CR-Spectre flow (Fig. 2c): load the host,
// scan it for gadgets, build the overflow payload, run — the hijacked
// host EXECs the attack binary, which leaks the host's secret and then
// resumes the host workload under whose cloak it ran.
func (cfg Config) crRun(w mibench.Workload, spec AttackSpec, seed int64) (*CRResult, error) {
	hostMod, err := w.HostModule(rop.HostOptions{Secret: cfg.Secret})
	if err != nil {
		return nil, err
	}
	m := cfg.machine(seed)
	m.Register(w.Name, hostMod, hostBase)
	hostImg, err := m.Load(w.Name)
	if err != nil {
		return nil, err
	}
	att := spectre.Config{
		Variant:        spec.Variant,
		TargetAddr:     hostImg.MustSymbol("__secret"),
		SecretLen:      len(cfg.Secret),
		PerturbAsm:     spec.perturbAsm(),
		ProbeDelay:     spec.ProbeDelay,
		Rounds:         spec.Rounds,
		HistoryMatched: spec.HistoryMatched,
		ResumePath:     w.Name + "#workload_entry",
	}
	attMod, err := att.Module()
	if err != nil {
		return nil, fmt.Errorf("experiments: assemble cr-spectre: %w", err)
	}
	m.Register("crspectre", attMod, attackBase)

	plan, err := rop.PlanInjection(gadget.ScanAndCatalog(hostImg, 3), "crspectre", nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: rop plan: %w", err)
	}
	plan.Emit(cfg.Telemetry)
	if _, err := m.SetArg(plan.Payload); err != nil {
		return nil, err
	}
	if err := m.Start(w.Name); err != nil {
		return nil, err
	}
	samples, err := cfg.sampler().Run(m.CPU, cfg.Budget)
	if err != nil {
		return nil, fmt.Errorf("experiments: cr run on %s: %w", w.Name, err)
	}
	cfg.publishBlocks(m)
	out := m.Output.String()
	rec := out
	if len(rec) > len(cfg.Secret) {
		rec = rec[:len(cfg.Secret)]
	}
	injected := false
	for _, e := range m.ExecLog {
		if e == "crspectre" {
			injected = true
		}
	}
	return &CRResult{
		Samples:    samples,
		Recovered:  rec,
		Machine:    m,
		Injected:   injected,
		ChainWords: plan.Chain.Len(),
	}, nil
}

// RunCR exposes the CR-Spectre flow for the public facade and tools.
func RunCR(cfg Config, w mibench.Workload, spec AttackSpec, seed int64) (*CRResult, error) {
	return cfg.crRun(w, spec, seed)
}

// RunStandalone exposes the traditional-Spectre flow (Fig. 2b) for the
// facade, tools and ablation benchmarks.
func RunStandalone(cfg Config, spec AttackSpec, seed int64) ([]pmu.Sample, *vm.Machine, error) {
	return cfg.standaloneRun(spec, seed)
}

// RunStandaloneCoTenant runs the standalone attack while a benign
// workload co-executes on a shared cache hierarchy (vm.CoExec) — the
// realistic noisy-neighbour channel. It returns the attack machine (its
// Output carries the recovered bytes).
func RunStandaloneCoTenant(cfg Config, spec AttackSpec, neighbour mibench.Workload, quantum uint64, seed int64) (*vm.Machine, error) {
	m := cfg.machine(seed)
	m.Register("target", holderModule(cfg.Secret), targetBase)
	img, err := m.Load("target")
	if err != nil {
		return nil, err
	}
	att := spectre.Config{
		Variant:        spec.Variant,
		TargetAddr:     img.MustSymbol("__secret"),
		SecretLen:      len(cfg.Secret),
		PerturbAsm:     spec.perturbAsm(),
		ProbeDelay:     spec.ProbeDelay,
		Rounds:         spec.Rounds,
		HistoryMatched: spec.HistoryMatched,
	}
	mod, err := att.Module()
	if err != nil {
		return nil, err
	}
	m.Register("spectre", mod, attackBase)
	if _, err := m.Load("spectre"); err != nil {
		return nil, err
	}
	if err := m.Start("spectre"); err != nil {
		return nil, err
	}

	nMod, err := neighbour.HostModule(rop.HostOptions{})
	if err != nil {
		return nil, err
	}
	nm := cfg.machine(seed + 1)
	// Disjoint base: the shared hierarchy is indexed by machine address.
	nm.Register(neighbour.Name, nMod, 0xA00000)
	co := vm.NewCoExec(m, nm, quantum)
	if err := co.StartNeighbour(neighbour.Name, []byte("bg")); err != nil {
		return nil, err
	}
	if err := co.Run(cfg.Budget); err != nil {
		return nil, err
	}
	return m, nil
}

// CREvalSet builds the detector evaluation mix for one CR run: the
// run's (noisy) samples labelled attack plus a fresh benign batch.
func CREvalSet(cfg Config, cr *CRResult, benign *trace.Set) (*trace.Set, error) {
	crSet := trace.NewSet(pmu.AllEvents())
	crSet.AddNoisy("cr-spectre", trace.LabelAttack, cr.Samples, cfg.NoiseSigma, cfg.Seed+55)
	return cfg.evalMix(crSet.Project(cfg.FeatureSize), benign.Project(cfg.FeatureSize), cfg.Seed+56), nil
}

// BenignCorpus profiles the workload list with per-run noise and layout
// variation until ~total samples are collected (the paper's benign
// class: the hosts plus other applications running on the system). The
// workloads fan out across the worker pool; each workload's repetition
// seeds derive from (Seed, workload index, rep), so the corpus is
// byte-identical for any Workers setting.
func (cfg Config) BenignCorpus(workloads []mibench.Workload, total int) (*trace.Set, error) {
	set := trace.NewSet(pmu.AllEvents())
	if len(workloads) == 0 || total <= 0 {
		return set, nil
	}
	quota := (total + len(workloads) - 1) / len(workloads)
	parts, err := sched.Map(cfg.ctx("benign-corpus"), cfg.workers(), len(workloads),
		func(ctx context.Context, i int) (*trace.Set, error) {
			w := workloads[i]
			part := trace.NewSet(pmu.AllEvents())
			base := sched.DeriveSeed(cfg.Seed*7919, uint64(i))
			got := 0
			for rep := 0; got < quota && rep < 200; rep++ {
				seed := sched.DeriveSeed(base, uint64(rep))
				samples, m, err := cfg.benignRun(w, seed)
				if err != nil {
					return nil, err
				}
				sched.ObserveInstrs(ctx, m.CPU.Instret())
				samples = subsample(samples, quota-got)
				part.AddNoisy(w.Name, trace.LabelBenign, samples, cfg.NoiseSigma, seed)
				got += len(samples)
			}
			return part, nil
		})
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		if err := set.Merge(part); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// AttackCorpus profiles the standalone Spectre variants (the traces the
// HID is trained on; the paper averages over the variant set). Variants
// fan out like BenignCorpus workloads, with per-(variant, rep) derived
// seeds.
func (cfg Config) AttackCorpus(total int) (*trace.Set, error) {
	set := trace.NewSet(pmu.AllEvents())
	variants := spectre.Variants()
	if total <= 0 {
		return set, nil
	}
	quota := (total + len(variants) - 1) / len(variants)
	parts, err := sched.Map(cfg.ctx("attack-corpus"), cfg.workers(), len(variants),
		func(ctx context.Context, i int) (*trace.Set, error) {
			v := variants[i]
			part := trace.NewSet(pmu.AllEvents())
			base := sched.DeriveSeed(cfg.Seed*104729, uint64(i))
			got := 0
			for rep := 0; got < quota && rep < 200; rep++ {
				seed := sched.DeriveSeed(base, uint64(rep))
				samples, m, err := cfg.standaloneRun(AttackSpec{Variant: v}, seed)
				if err != nil {
					return nil, err
				}
				sched.ObserveInstrs(ctx, m.CPU.Instret())
				samples = subsample(samples, quota-got)
				part.AddNoisy("spectre-"+v.String(), trace.LabelAttack, samples, cfg.NoiseSigma, seed)
				got += len(samples)
			}
			return part, nil
		})
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		if err := set.Merge(part); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// subsample keeps at most n samples spread evenly across the run, so a
// long run contributes every execution phase rather than just its first
// intervals.
func subsample(samples []pmu.Sample, n int) []pmu.Sample {
	if n <= 0 {
		return nil
	}
	if len(samples) <= n {
		return samples
	}
	out := make([]pmu.Sample, 0, n)
	step := float64(len(samples)) / float64(n)
	for k := 0; k < n; k++ {
		out = append(out, samples[int(float64(k)*step)])
	}
	return out
}

// evalMix builds a per-attempt evaluation set: the attempt's attack
// samples plus a fresh benign batch at roughly 4:1 attack:benign — the
// system keeps running benign applications while the attack executes, so
// the HID judges a mixed stream. The sampling RNG follows the engine's
// derivation rule (a private stream per call), so concurrent evalMix
// calls from pool tasks never share random state.
func (cfg Config) evalMix(attack *trace.Set, benign *trace.Set, seed int64) *trace.Set {
	out := trace.NewSet(attack.Events)
	_ = out.Merge(attack)
	want := len(attack.Data.Y) / 4
	if want < 1 {
		want = 1
	}
	rng := sched.Rand(seed, 0)
	n := benign.Len()
	for k := 0; k < want && n > 0; k++ {
		i := rng.Intn(n)
		out.Apps = append(out.Apps, benign.Apps[i])
		out.Data.X = append(out.Data.X, benign.Data.X[i])
		out.Data.Y = append(out.Data.Y, benign.Data.Y[i])
	}
	return out
}
