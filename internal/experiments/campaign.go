package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// CampaignSpec selects which sections of the paper's evaluation one run
// regenerates. It is the shared job payload behind cmd/experiments'
// flags and the crspectred daemon's campaign job kinds: both resolve to
// a CampaignSpec and call RunCampaign, so a job that ran on the daemon
// executed exactly the code path the CLI would have — same drivers,
// same section order, same CSV bytes, same manifest content.
type CampaignSpec struct {
	Fig4    bool // Fig. 4: HID accuracy vs feature size
	Fig5    bool // Fig. 5: offline-type HID campaign
	Fig6    bool // Fig. 6: online-type HID campaign
	Latency bool // extension: online-HID detection latency
	Recycle bool // extension: variant recycling vs windowed HID
	Alarms  bool // extension: run-level alarm policies
	Table1  bool // Table I: IPC overhead
}

// Any reports whether at least one section is selected.
func (s CampaignSpec) Any() bool {
	return s.Fig4 || s.Fig5 || s.Fig6 || s.Latency || s.Recycle || s.Alarms || s.Table1
}

// RunCampaign executes the selected sections in the canonical order
// (Fig. 4, Fig. 5, Fig. 6, the three extensions, Table I), rendering
// text tables to stdout and, when csvdir is non-empty, writing the CSV
// series into it. Cancellation arrives through cfg.BaseCtx: the worker
// pools inside every driver stop dispatching once it is cancelled, and
// the context's error is returned.
func RunCampaign(cfg Config, spec CampaignSpec, stdout io.Writer, csvdir string) error {
	section := func(name string, f func() error) error {
		start := time.Now()
		fmt.Fprintf(stdout, "=== %s ===\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		return nil
	}

	writeCSV := func(name string, emit func(f *os.File)) error {
		if csvdir == "" {
			return nil
		}
		if err := os.MkdirAll(csvdir, 0o755); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		f, err := os.Create(filepath.Join(csvdir, name))
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		emit(f)
		if err := f.Close(); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", filepath.Join(csvdir, name))
		return nil
	}

	if spec.Fig4 {
		if err := section("Fig 4: HID accuracy vs feature size", func() error {
			rows, err := Fig4(cfg)
			if err != nil {
				return err
			}
			RenderFig4(stdout, rows)
			return writeCSV("fig4.csv", func(f *os.File) { Fig4CSV(f, rows) })
		}); err != nil {
			return err
		}
	}
	if spec.Fig5 {
		if err := section("Fig 5: offline-type HID campaign", func() error {
			res, err := Fig5(cfg)
			if err != nil {
				return err
			}
			RenderCampaign(stdout, res, cfg.Classifiers)
			return writeCSV("fig5.csv", func(f *os.File) { CampaignCSV(f, res) })
		}); err != nil {
			return err
		}
	}
	if spec.Fig6 {
		if err := section("Fig 6: online-type HID campaign", func() error {
			res, err := Fig6(cfg)
			if err != nil {
				return err
			}
			RenderCampaign(stdout, res, cfg.Classifiers)
			return writeCSV("fig6.csv", func(f *os.File) { CampaignCSV(f, res) })
		}); err != nil {
			return err
		}
	}
	if spec.Latency {
		if err := section("Extension: online-HID detection latency", func() error {
			rows, err := DetectionLatency(cfg, 6)
			if err != nil {
				return err
			}
			RenderLatency(stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if spec.Recycle {
		if err := section("Extension: variant recycling vs windowed HID", func() error {
			rows, err := VariantRecycling(cfg, 600)
			if err != nil {
				return err
			}
			RenderRecycling(stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if spec.Alarms {
		if err := section("Extension: run-level alarm policies vs diluted CR-Spectre", func() error {
			rows, err := RunLevelDetection(cfg, nil, 6)
			if err != nil {
				return err
			}
			RenderAlarms(stdout, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if spec.Table1 {
		if err := section("Table I: IPC overhead", func() error {
			rows, err := Table1(cfg)
			if err != nil {
				return err
			}
			RenderTable1(stdout, rows)
			return writeCSV("table1.csv", func(f *os.File) { Table1CSV(f, rows) })
		}); err != nil {
			return err
		}
	}
	return nil
}
