package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/hid"
	"repro/internal/mibench"
	"repro/internal/ml"
	"repro/internal/perturb"
	"repro/internal/pmu"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/trace"
)

// RecycleRow is one phase of the variant-recycling experiment.
type RecycleRow struct {
	Phase    string
	Accuracy float64
	Verdict  hid.Verdict
}

// VariantRecycling is an extension experiment probing a realistic HID
// deployment constraint: bounded training memory. A sliding-window
// online detector learns variant A, the attacker switches to variant B
// long enough for A's traces to age out of the window, then *recycles*
// A — which evades again. The unbounded online HID of Fig. 6 does not
// forget; a memory-bounded one re-opens every door it ever closed.
func VariantRecycling(cfg Config, window int) ([]RecycleRow, error) {
	if window <= 0 {
		window = 600
	}
	benign, err := cfg.BenignCorpus(mibench.AllWithBackgrounds(), cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	attackTrain, err := cfg.AttackCorpus(cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	train := benign.Project(cfg.FeatureSize)
	if err := train.Merge(attackTrain.Project(cfg.FeatureSize)); err != nil {
		return nil, err
	}
	benignEval := benign.Project(cfg.FeatureSize)
	host, err := mibench.ByName("math")
	if err != nil {
		return nil, err
	}

	clf, ok := ml.ByName("mlp", cfg.Seed)
	if !ok {
		return nil, fmt.Errorf("recycle: mlp unavailable")
	}
	det := hid.NewWindowed(clf, window)
	// Shuffle before seeding: the window keeps the most recent traces,
	// and the merged corpus is ordered benign-then-attack — trimming an
	// unshuffled corpus would skew the class balance.
	train.Data.Shuffle(cfg.Seed + 99)
	if err := det.Train(train.Data); err != nil {
		return nil, err
	}

	// Variant A is heavily dispersed (benign-looking density); the decoy
	// phase B is a plain, undiluted CR run (raw-Spectre signature). The
	// two sit far apart in feature space, so evicting A's traces leaves
	// the detector with nothing that generalises to A.
	rng := rand.New(rand.NewSource(cfg.Seed + 4242))
	variantA := perturb.Paper().Mutate(rng)
	variantA.Delay = 150

	runEval := func(v *perturb.Params, pd int64, seed int64) (ml.Dataset, error) {
		cr, err := cfg.crRun(host, AttackSpec{
			Variant: spectre.V1BoundsCheck, Perturb: v, ProbeDelay: pd,
		}, seed)
		if err != nil {
			return ml.Dataset{}, err
		}
		set := trace.NewSet(pmu.AllEvents())
		set.AddNoisy("cr", trace.LabelAttack, cr.Samples, cfg.NoiseSigma, seed)
		return cfg.evalMix(set.Project(cfg.FeatureSize), benignEval, seed+3).Data, nil
	}

	var rows []RecycleRow
	record := func(phase string, acc float64) {
		rows = append(rows, RecycleRow{Phase: phase, Accuracy: acc, Verdict: hid.Judge(acc)})
	}

	// Phase 1: fresh variant A evades, the detector observes + retrains
	// until it is caught.
	const dilutionA = 500
	seed := cfg.Seed * 13
	evalA, err := runEval(&variantA, dilutionA, seed)
	if err != nil {
		return nil, err
	}
	record("A first strike", det.Accuracy(evalA))
	for round := 0; round < 4; round++ {
		if err := det.Observe(evalA); err != nil {
			return nil, err
		}
		seed++
		if evalA, err = runEval(&variantA, dilutionA, seed); err != nil {
			return nil, err
		}
		acc := det.Accuracy(evalA)
		record(fmt.Sprintf("A after retrain %d", round+1), acc)
		if acc > hid.DetectThreshold {
			break
		}
	}

	// Phase 2: the attacker switches to the plain decoy; the defender
	// keeps observing the stream (benign + decoy), aging A's traces out
	// of the bounded window. The decoy simulations don't depend on
	// detector state, so they fan out across the pool; observation then
	// replays them in round order.
	const decoyRounds = 6
	decoyBase := seed
	decoys, err := sched.Map(cfg.ctx("recycle-decoys"), cfg.workers(), decoyRounds,
		func(_ context.Context, r int) (ml.Dataset, error) {
			return runEval(nil, 0, decoyBase+1+int64(r))
		})
	if err != nil {
		return nil, err
	}
	for round := 0; round < decoyRounds; round++ {
		seed++
		if err := det.Observe(decoys[round]); err != nil {
			return nil, err
		}
		// Ambient benign traffic also flows through the window.
		amb := sampleRows(benignEval, 60, seed+5000)
		if err := det.Observe(amb); err != nil {
			return nil, err
		}
	}
	// The last decoy batch, rescored after all observations, is what
	// the analyst sees once the decoy is established (same seed — and
	// therefore identical data — as the sequential implementation's
	// re-run).
	record("decoy established", det.Accuracy(decoys[decoyRounds-1]))

	// Phase 3: recycle variant A after its traces aged out.
	seed++
	evalA2, err := runEval(&variantA, dilutionA, seed)
	if err != nil {
		return nil, err
	}
	record("A recycled", det.Accuracy(evalA2))
	return rows, nil
}

// sampleRows draws n random rows from a set as a dataset.
func sampleRows(set *trace.Set, n int, seed int64) ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var out ml.Dataset
	for k := 0; k < n && set.Len() > 0; k++ {
		i := rng.Intn(set.Len())
		out.X = append(out.X, set.Data.X[i])
		out.Y = append(out.Y, set.Data.Y[i])
	}
	return out
}

// RenderRecycling prints the phase table.
func RenderRecycling(w io.Writer, rows []RecycleRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\taccuracy\tverdict")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%s\n", r.Phase, 100*r.Accuracy, r.Verdict)
	}
	tw.Flush()
}

// EnsembleRow compares one detector's accuracy on an evading CR-Spectre
// stream against the committee of all four families, at a given feature
// size.
type EnsembleRow struct {
	Detector    string
	FeatureSize int
	Accuracy    float64
}

// EnsembleComparison is a defender-side extension asking two questions
// about an evading (diluted) CR-Spectre variant: does a majority-vote
// committee of all four classifier families help, and does widening the
// monitored feature set help? The answer is asymmetric — the mimicry
// lives in the paper's 4-feature space (every model and the committee
// fail identically), while 16 features expose the perturbation's
// clflush/fence fingerprint that no benign application carries.
func EnsembleComparison(cfg Config) ([]EnsembleRow, error) {
	benign, err := cfg.BenignCorpus(mibench.AllWithBackgrounds(), cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	attackTrain, err := cfg.AttackCorpus(cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	host, err := mibench.ByName("math")
	if err != nil {
		return nil, err
	}
	variant := perturb.Paper()
	variant.Delay = 120
	cr, err := cfg.crRun(host, AttackSpec{
		Variant: spectre.V1BoundsCheck, Perturb: &variant, ProbeDelay: 350,
	}, cfg.Seed*7+3)
	if err != nil {
		return nil, err
	}
	crSet := trace.NewSet(pmu.AllEvents())
	crSet.AddNoisy("cr", trace.LabelAttack, cr.Samples, cfg.NoiseSigma, cfg.Seed+91)

	var rows []EnsembleRow
	for _, size := range []int{cfg.FeatureSize, 16} {
		train := benign.Project(size)
		if err := train.Merge(attackTrain.Project(size)); err != nil {
			return nil, err
		}
		eval := cfg.evalMix(crSet.Project(size), benign.Project(size), cfg.Seed+92)
		var members []ml.Classifier
		for i, name := range ml.ClassifierNames() {
			clf, _ := ml.ByName(name, cfg.Seed+int64(i))
			det := hid.New(clf)
			if err := det.Train(train.Data); err != nil {
				return nil, err
			}
			rows = append(rows, EnsembleRow{Detector: name, FeatureSize: size, Accuracy: det.Accuracy(eval.Data)})
			clf2, _ := ml.ByName(name, cfg.Seed+int64(i))
			members = append(members, clf2)
		}
		committee := hid.NewEnsemble(members...)
		if err := committee.Train(train.Data); err != nil {
			return nil, err
		}
		rows = append(rows, EnsembleRow{Detector: "ensemble", FeatureSize: size, Accuracy: committee.Accuracy(eval.Data)})
	}
	return rows, nil
}

// RenderEnsemble prints the comparison.
func RenderEnsemble(w io.Writer, rows []EnsembleRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "detector\tfeatures\taccuracy\tverdict")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%s\n", r.Detector, r.FeatureSize, 100*r.Accuracy, hid.Judge(r.Accuracy))
	}
	tw.Flush()
}
