package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/hid"
	"repro/internal/mibench"
	"repro/internal/ml"
	"repro/internal/perturb"
	"repro/internal/pmu"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/trace"
)

// AlarmPolicy raises a run-level alarm when at least K of any W
// consecutive samples classify as attack. K=1, W=1 is the naive
// "any sample" rule; W=0 counts over the whole run.
type AlarmPolicy struct {
	K, W int
}

// String names the policy.
func (p AlarmPolicy) String() string {
	if p.K <= 1 && p.W <= 1 {
		return "any-sample"
	}
	if p.W <= 0 {
		return fmt.Sprintf("%d-per-run", p.K)
	}
	return fmt.Sprintf("%d-of-%d", p.K, p.W)
}

// Fires evaluates the policy over a prediction sequence.
func (p AlarmPolicy) Fires(pred []int) bool {
	k := p.K
	if k < 1 {
		k = 1
	}
	if p.W <= 0 {
		total := 0
		for _, v := range pred {
			total += v
		}
		return total >= k
	}
	w := p.W
	if w < k {
		w = k
	}
	count := 0
	for i, v := range pred {
		count += v
		if i >= w {
			count -= pred[i-w]
		}
		if count >= k {
			return true
		}
	}
	return false
}

// AlarmRow reports one policy's run-level quality.
type AlarmRow struct {
	Policy       string
	BenignAlarms int // false alarms over the benign runs
	BenignRuns   int
	CRDetected   int // diluted CR-Spectre runs caught
	CRRuns       int
}

// RunLevelDetection is the defender-side answer to interval-level
// evasion: pointwise accuracy on a diluted CR-Spectre stream collapses
// (most intervals genuinely mimic benign ones), but the perturbation's
// rare clflush-burst intervals still classify as attack — so an alarm
// that triggers on clustered suspicious samples catches the *run*
// without flooding the analyst with benign false alarms. Evaluated at
// 16 monitored features where the flush fingerprint is visible.
func RunLevelDetection(cfg Config, policies []AlarmPolicy, crRuns int) ([]AlarmRow, error) {
	if len(policies) == 0 {
		policies = []AlarmPolicy{{1, 1}, {2, 8}, {3, 0}, {6, 0}}
	}
	if crRuns <= 0 {
		crRuns = 6
	}
	const features = 16

	benign, err := cfg.BenignCorpus(mibench.AllWithBackgrounds(), cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	attackTrain, err := cfg.AttackCorpus(cfg.SamplesPerClass)
	if err != nil {
		return nil, err
	}
	train := benign.Project(features)
	if err := train.Merge(attackTrain.Project(features)); err != nil {
		return nil, err
	}
	clf, _ := ml.ByName("mlp", cfg.Seed)
	det := hid.New(clf)
	if err := det.Train(train.Data); err != nil {
		return nil, err
	}

	classify := func(samples []pmu.Sample, seed int64) []int {
		set := trace.NewSet(pmu.AllEvents())
		set.AddNoisy("run", trace.LabelAttack, samples, cfg.NoiseSigma, seed)
		proj := set.Project(features)
		pred := make([]int, proj.Len())
		for i, row := range proj.Data.X {
			pred[i] = det.Predict(row)
		}
		return pred
	}

	// Per-run prediction sequences: one fresh run per benign workload,
	// crRuns diluted CR campaigns. Each run is an independent machine
	// and the detector is frozen (Predict is read-only), so both run
	// sets fan out across the pool.
	benignRuns := mibench.AllWithBackgrounds()
	benignSeqs, err := sched.Map(cfg.ctx("alarm-benign"), cfg.workers(), len(benignRuns),
		func(_ context.Context, i int) ([]int, error) {
			samples, _, err := cfg.benignRun(benignRuns[i], cfg.Seed*53+int64(i))
			if err != nil {
				return nil, err
			}
			return classify(samples, cfg.Seed+int64(i)), nil
		})
	if err != nil {
		return nil, err
	}
	host, err := mibench.ByName("math")
	if err != nil {
		return nil, err
	}
	variant := perturb.Paper()
	variant.Delay = 120
	crSeqs, err := sched.Map(cfg.ctx("alarm-crspectre"), cfg.workers(), crRuns,
		func(_ context.Context, r int) ([]int, error) {
			cr, err := cfg.crRun(host, AttackSpec{
				Variant: spectre.V1BoundsCheck, Perturb: &variant, ProbeDelay: 350,
			}, cfg.Seed*71+int64(r))
			if err != nil {
				return nil, err
			}
			return classify(cr.Samples, cfg.Seed+100+int64(r)), nil
		})
	if err != nil {
		return nil, err
	}

	var rows []AlarmRow
	for _, p := range policies {
		row := AlarmRow{Policy: p.String(), BenignRuns: len(benignSeqs), CRRuns: len(crSeqs)}
		for _, seq := range benignSeqs {
			if p.Fires(seq) {
				row.BenignAlarms++
			}
		}
		for _, seq := range crSeqs {
			if p.Fires(seq) {
				row.CRDetected++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAlarms prints the run-level detection table.
func RenderAlarms(w io.Writer, rows []AlarmRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tbenign false alarms\tdiluted CR runs caught")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d/%d\t%d/%d\n", r.Policy, r.BenignAlarms, r.BenignRuns, r.CRDetected, r.CRRuns)
	}
	tw.Flush()
}
