package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/hid"
	"repro/internal/mibench"
	"repro/internal/ml"
	"repro/internal/perturb"
	"repro/internal/pmu"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/trace"
	"repro/internal/vm"
)

// AttemptPoint is one plotted point of Figs. 5/6: a detector's accuracy
// on one attack attempt's trace mix.
type AttemptPoint struct {
	Classifier string
	Attempt    int
	Accuracy   float64
	Verdict    hid.Verdict
	Variant    string // perturbation variant in effect ("" for plain)
	Recovered  bool   // the covert channel returned the exact secret
}

// CampaignResult holds both panels of Fig. 5 or Fig. 6.
type CampaignResult struct {
	Online bool
	// Plain is panel (a): the traditional standalone Spectre attack.
	Plain []AttemptPoint
	// CR is panel (b): ROP-injected CR-Spectre with perturbations.
	CR []AttemptPoint
}

// Fig5 runs the offline-HID campaign (panel a: plain Spectre stays
// detected at high accuracy; panel b: CR-Spectre with the static
// Algorithm-2 variant plus a ramping dispersion schedule degrades the
// static detector below the 55% evasion threshold).
func Fig5(cfg Config) (*CampaignResult, error) { return cfg.campaign(false) }

// Fig6 runs the online-HID campaign (panel a: retraining keeps the
// detector leveled; panel b: dynamic perturbation mutation each time the
// detector exceeds 80% produces the sawtooth degradation with the low
// observed minima).
func Fig6(cfg Config) (*CampaignResult, error) { return cfg.campaign(true) }

// detector abstracts the offline/online HIDs for the campaign loop.
type detector interface {
	Train(ml.Dataset) error
	Accuracy(ml.Dataset) float64
	Name() string
}

type campaignState struct {
	det        detector
	online     *hid.Online // non-nil in the online campaign
	variant    perturb.Params
	probeDelay int64
	rng        *rand.Rand
}

func (cfg Config) newStates(online bool, train ml.Dataset, seedOff int64) ([]*campaignState, error) {
	var states []*campaignState
	for i, name := range cfg.Classifiers {
		clf, ok := ml.ByName(name, cfg.Seed+int64(i)+seedOff)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown classifier %q", name)
		}
		st := &campaignState{
			variant: perturb.Paper(),
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(i)*97 + seedOff)),
		}
		if online {
			o := hid.NewOnline(clf)
			st.det, st.online = o, o
		} else {
			st.det = hid.New(clf)
		}
		if err := st.det.Train(train); err != nil {
			return nil, fmt.Errorf("campaign: train %s: %w", name, err)
		}
		states = append(states, st)
	}
	return states, nil
}

func (cfg Config) campaign(online bool) (*CampaignResult, error) {
	benign, err := cfg.BenignCorpus(mibench.AllWithBackgrounds(), cfg.SamplesPerClass)
	if err != nil {
		return nil, fmt.Errorf("campaign: benign corpus: %w", err)
	}
	attackTrain, err := cfg.AttackCorpus(cfg.SamplesPerClass)
	if err != nil {
		return nil, fmt.Errorf("campaign: attack corpus: %w", err)
	}
	train := benign.Project(cfg.FeatureSize)
	if err := train.Merge(attackTrain.Project(cfg.FeatureSize)); err != nil {
		return nil, err
	}
	benignEval := benign.Project(cfg.FeatureSize)

	plainStates, err := cfg.newStates(online, train.Data, 0)
	if err != nil {
		return nil, err
	}
	crStates, err := cfg.newStates(online, train.Data, 1000)
	if err != nil {
		return nil, err
	}

	host, err := mibench.ByName("math")
	if err != nil {
		return nil, err
	}
	variants := spectre.Variants()
	res := &CampaignResult{Online: online}

	// attemptSims carries one attempt's fanned-out simulations: task 0
	// is the panel-(a) standalone run, tasks 1..len(crStates) the
	// per-detector CR runs.
	type attemptSims struct {
		samples []pmu.Sample
		machine *vm.Machine
		cr      *CRResult
	}

	for attempt := 1; attempt <= cfg.Attempts; attempt++ {
		seed := cfg.Seed*1_000_003 + int64(attempt)

		// Panel (a): plain standalone Spectre, variants rotating across
		// attempts (the paper averages over the variant set).
		spec := AttackSpec{Variant: variants[(attempt-1)%len(variants)]}

		// Panel (b) specs: offline HIDs face the single static
		// Algorithm-2 variant with the dispersion-delay schedule ramping
		// per attempt (no feedback needed against a detector that never
		// learns); online HIDs face per-detector dynamic mutation. Each
		// spec reads only state fixed at the start of the attempt, so
		// they are captured here and the simulations — the dominant
		// wall-clock cost — fan out across the pool. Detector scoring,
		// observation and mutation stay strictly sequential below.
		crSpecs := make([]AttackSpec, len(crStates))
		crVariants := make([]perturb.Params, len(crStates))
		for j, st := range crStates {
			variant := st.variant
			var pd int64
			if online {
				pd = st.probeDelay
			} else {
				variant = perturb.Paper()
				variant.Delay = int64(attempt) * 30
				pd = int64(attempt-1) * 90
			}
			crVariants[j] = variant
			crSpecs[j] = AttackSpec{
				Variant:    variants[(attempt-1)%len(variants)],
				Perturb:    &crVariants[j],
				ProbeDelay: pd,
			}
		}
		sims, err := sched.Map(cfg.ctx("campaign"), cfg.workers(), 1+len(crStates),
			func(_ context.Context, t int) (attemptSims, error) {
				if t == 0 {
					samples, m, err := cfg.standaloneRun(spec, seed)
					if err != nil {
						return attemptSims{}, fmt.Errorf("campaign: attempt %d standalone: %w", attempt, err)
					}
					return attemptSims{samples: samples, machine: m}, nil
				}
				st := crStates[t-1]
				cr, err := cfg.crRun(host, crSpecs[t-1], seed+int64(len(st.det.Name())))
				if err != nil {
					return attemptSims{}, fmt.Errorf("campaign: attempt %d cr (%s): %w", attempt, st.det.Name(), err)
				}
				return attemptSims{cr: cr}, nil
			})
		if err != nil {
			return nil, err
		}

		recovered := sims[0].machine.Output.String() == cfg.Secret
		aSet := trace.NewSet(pmu.AllEvents())
		aSet.AddNoisy("spectre", trace.LabelAttack, sims[0].samples, cfg.NoiseSigma, seed)
		eval := cfg.evalMix(aSet.Project(cfg.FeatureSize), benignEval, seed)
		for _, st := range plainStates {
			acc := st.det.Accuracy(eval.Data)
			res.Plain = append(res.Plain, AttemptPoint{
				Classifier: st.det.Name(),
				Attempt:    attempt,
				Accuracy:   acc,
				Verdict:    hid.Judge(acc),
				Recovered:  recovered,
			})
			if st.online != nil {
				if err := st.online.Observe(eval.Data); err != nil {
					return nil, err
				}
			}
		}

		for j, st := range crStates {
			cr := sims[1+j].cr
			crSet := trace.NewSet(pmu.AllEvents())
			crSet.AddNoisy("cr-spectre", trace.LabelAttack, cr.Samples, cfg.NoiseSigma, seed)
			crEval := cfg.evalMix(crSet.Project(cfg.FeatureSize), benignEval, seed+7)
			acc := st.det.Accuracy(crEval.Data)
			res.CR = append(res.CR, AttemptPoint{
				Classifier: st.det.Name(),
				Attempt:    attempt,
				Accuracy:   acc,
				Verdict:    hid.Judge(acc),
				Variant:    crVariants[j].String(),
				Recovered:  cr.Recovered == cfg.Secret && cr.Injected,
			})
			if st.online != nil {
				if err := st.online.Observe(crEval.Data); err != nil {
					return nil, err
				}
				// Defense-aware adaptation (§II-E): mutate when caught.
				if acc > hid.DetectThreshold {
					st.variant = st.variant.Mutate(st.rng)
					st.probeDelay = 60 + st.rng.Int63n(400)
				}
			}
		}
	}
	return res, nil
}

// Points selects one classifier's series from a panel.
func Points(panel []AttemptPoint, classifier string) []AttemptPoint {
	var out []AttemptPoint
	for _, p := range panel {
		if p.Classifier == classifier {
			out = append(out, p)
		}
	}
	return out
}

// MeanAccuracy averages a panel's accuracy.
func MeanAccuracy(panel []AttemptPoint) float64 {
	if len(panel) == 0 {
		return 0
	}
	var s float64
	for _, p := range panel {
		s += p.Accuracy
	}
	return s / float64(len(panel))
}

// MinAccuracy returns the lowest accuracy in a panel (the paper reports
// a 16% minimum for the online CR campaign).
func MinAccuracy(panel []AttemptPoint) float64 {
	if len(panel) == 0 {
		return 0
	}
	minA := panel[0].Accuracy
	for _, p := range panel {
		if p.Accuracy < minA {
			minA = p.Accuracy
		}
	}
	return minA
}
