package experiments

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/mibench"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// The golden determinism contract of the parallel experiment engine:
// for any experiment, a run with Workers=N must produce byte-identical
// results to Workers=1, and two runs at the same (seed, workers) must be
// identical. These tests are the enforcement mechanism behind
// internal/sched's RNG-derivation rule; CI runs them under the race
// detector with GOMAXPROCS=4.

// detCfg is a deliberately tiny configuration so the Workers sweep stays
// CI-cheap.
func detCfg(workers int) Config {
	cfg := testConfig()
	cfg.SamplesPerClass = 40
	cfg.Workers = workers
	return cfg
}

func TestDeterminismCorpora(t *testing.T) {
	build := func(workers int) (benignApps []string, benignX [][]float64, attackApps []string, attackX [][]float64) {
		cfg := detCfg(workers)
		b, err := cfg.BenignCorpus(mibench.Backgrounds(), 40)
		if err != nil {
			t.Fatal(err)
		}
		a, err := cfg.AttackCorpus(40)
		if err != nil {
			t.Fatal(err)
		}
		return b.Apps, b.Data.X, a.Apps, a.Data.X
	}
	bApps1, bX1, aApps1, aX1 := build(1)
	bApps4, bX4, aApps4, aX4 := build(4)
	if !reflect.DeepEqual(bApps1, bApps4) || !reflect.DeepEqual(bX1, bX4) {
		t.Error("benign corpus differs between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(aApps1, aApps4) || !reflect.DeepEqual(aX1, aX4) {
		t.Error("attack corpus differs between Workers=1 and Workers=4")
	}
	_, bX4b, _, aX4b := build(4)
	if !reflect.DeepEqual(bX4, bX4b) || !reflect.DeepEqual(aX4, aX4b) {
		t.Error("two Workers=4 corpus builds with the same seed differ")
	}
}

func TestDeterminismFig4(t *testing.T) {
	run := func(workers int) ([]Fig4Row, []byte) {
		rows, err := Fig4(detCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		Fig4CSV(&csv, rows)
		return rows, csv.Bytes()
	}
	rows1, csv1 := run(1)
	rows4, csv4 := run(4)
	if !reflect.DeepEqual(rows1, rows4) {
		t.Errorf("Fig4 rows differ between Workers=1 and Workers=4:\n%v\nvs\n%v", rows1, rows4)
	}
	if !bytes.Equal(csv1, csv4) {
		t.Error("Fig4 CSV output not byte-identical across worker counts")
	}
	rows4b, csv4b := run(4)
	if !reflect.DeepEqual(rows4, rows4b) || !bytes.Equal(csv4, csv4b) {
		t.Error("two Workers=4 Fig4 runs with the same seed differ")
	}
}

func TestDeterminismTable1(t *testing.T) {
	workloads := []mibench.Workload{
		mibench.Math(2_000),
		mibench.SHA1(150),
	}
	run := func(workers int) ([]Table1Row, []byte) {
		cfg := detCfg(workers)
		cfg.Reps = 2
		rows, err := Table1For(cfg, workloads)
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		Table1CSV(&csv, rows)
		return rows, csv.Bytes()
	}
	rows1, csv1 := run(1)
	rows4, csv4 := run(4)
	if !reflect.DeepEqual(rows1, rows4) {
		t.Errorf("Table1 rows differ between Workers=1 and Workers=4:\n%v\nvs\n%v", rows1, rows4)
	}
	if !bytes.Equal(csv1, csv4) {
		t.Error("Table1 CSV output not byte-identical across worker counts")
	}
	rows4b, csv4b := run(4)
	if !reflect.DeepEqual(rows4, rows4b) || !bytes.Equal(csv4, csv4b) {
		t.Error("two Workers=4 Table1 runs with the same seed differ")
	}
}

// TestDeterminismManifest extends the contract to telemetry: the run
// manifest — config block, metrics snapshot, per-kind event totals —
// must be byte-identical across worker counts once the volatile fields
// (timings, build, host) and the worker count itself are zeroed. This
// holds because event counts are monotonic sums over per-machine
// emissions, independent of ring capacity and emit interleaving.
func TestDeterminismManifest(t *testing.T) {
	build := func(workers int) []byte {
		cfg := detCfg(workers)
		cfg.Telemetry = telemetry.NewRecorder(256) // tiny ring: counts must not care
		cfg.Metrics = telemetry.NewRegistry()
		// The tracker rides along: its manifest snapshot (pool lifecycle
		// totals, instruction counts) is part of the invariance contract,
		// while its wall-clock surface (latency histograms, rates) must
		// stay out of the manifest entirely.
		cfg.Tracker = sched.NewTracker(cfg.Metrics, cfg.Telemetry, nil)
		if _, err := cfg.AttackCorpus(24); err != nil {
			t.Fatal(err)
		}
		m := cfg.Manifest("experiments-test", nil)
		cfg.FinishManifest(m, time.Now())
		m.ZeroVolatile()
		m.Workers = 0
		out, err := m.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	m1, m4 := build(1), build(4)
	if !bytes.Equal(m1, m4) {
		t.Errorf("manifests differ between Workers=1 and Workers=4:\n%s\nvs\n%s", m1, m4)
	}
	if !bytes.Contains(m1, []byte(`"attack-corpus"`)) {
		t.Error("manifest lacks the attack-corpus progress pool")
	}
	if bytes.Contains(m1, []byte("task_ms")) {
		t.Error("wall-clock latency histogram leaked into the manifest")
	}
	if m4b := build(4); !bytes.Equal(m4, m4b) {
		t.Error("two Workers=4 manifests with the same seed differ")
	}
}

// TestDeterminismBlockMetrics pins the block-tier metrics triple
// (blocks.compiled / blocks.hits / blocks.invalidations): published
// per finished machine with commutative Add, the totals must be
// identical for any worker count — and non-zero, proving the superblock
// tier actually served the experiment rather than silently falling back
// to single-step.
func TestDeterminismBlockMetrics(t *testing.T) {
	build := func(workers int) map[string]float64 {
		cfg := detCfg(workers)
		cfg.Metrics = telemetry.NewRegistry()
		if _, err := cfg.AttackCorpus(24); err != nil {
			t.Fatal(err)
		}
		return cfg.Metrics.Values()
	}
	m1, m4 := build(1), build(4)
	for _, name := range []string{"blocks.compiled", "blocks.hits", "blocks.invalidations"} {
		if m1[name] != m4[name] {
			t.Errorf("%s differs between Workers=1 (%g) and Workers=4 (%g)", name, m1[name], m4[name])
		}
	}
	if m1["blocks.compiled"] == 0 || m1["blocks.hits"] == 0 {
		t.Errorf("block tier did not engage: compiled=%g hits=%g", m1["blocks.compiled"], m1["blocks.hits"])
	}
}

// TestDeterminismCampaign covers the stateful Fig. 5 path: the fan-out
// inside each attempt must not leak scheduling order into detector
// state.
func TestDeterminismCampaign(t *testing.T) {
	run := func(workers int) *CampaignResult {
		cfg := detCfg(workers)
		cfg.Attempts = 2
		cfg.SamplesPerClass = 60
		cfg.Classifiers = []string{"lr"}
		res, err := Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r4 := run(1), run(4)
	if !reflect.DeepEqual(r1.Plain, r4.Plain) {
		t.Error("campaign plain panel differs between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(r1.CR, r4.CR) {
		t.Error("campaign CR panel differs between Workers=1 and Workers=4")
	}
	r4b := run(4)
	if !reflect.DeepEqual(r4.CR, r4b.CR) {
		t.Error("two Workers=4 campaigns with the same seed differ")
	}
}
