package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hid"
	"repro/internal/mibench"
	"repro/internal/perturb"
	"repro/internal/pmu"
	"repro/internal/spectre"
	"repro/internal/trace"
)

// newTestSet builds a uniform labelled set for mixing tests.
func newTestSet(n, label int) *trace.Set {
	s := trace.NewSet(pmu.Features(4))
	samples := make([]pmu.Sample, n)
	for i := range samples {
		samples[i] = pmu.Sample{float64(i), 1, 2, 3}
	}
	s.Add("test", label, samples)
	return s
}

// testConfig is a deterministic, CI-sized configuration. The assertions
// below check result *shapes* (orderings, thresholds, trends) rather
// than exact values, but with a fixed seed the whole pipeline is
// reproducible bit-for-bit.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SamplesPerClass = 100
	cfg.Attempts = 4
	cfg.Secret = "SECR3T"
	cfg.Classifiers = []string{"lr", "svm"}
	cfg.Interval = 10_000
	return cfg
}

func TestCorporaLabelsAndSizes(t *testing.T) {
	cfg := testConfig()
	b, err := cfg.BenignCorpus(mibench.Backgrounds(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() < 40 {
		t.Fatalf("benign corpus too small: %d", b.Len())
	}
	for _, y := range b.Data.Y {
		if y != 0 {
			t.Fatal("benign corpus contains attack labels")
		}
	}
	a, err := cfg.AttackCorpus(60)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() < 40 {
		t.Fatalf("attack corpus too small: %d", a.Len())
	}
	for _, y := range a.Data.Y {
		if y != 1 {
			t.Fatal("attack corpus contains benign labels")
		}
	}
	// Per-app quotas keep any one app from flooding the class.
	counts := map[string]int{}
	for _, app := range b.Apps {
		counts[app]++
	}
	for app, c := range counts {
		if c > 40 {
			t.Errorf("app %s flooded the benign corpus with %d samples", app, c)
		}
	}
}

func TestStandaloneRunLeaksSecret(t *testing.T) {
	cfg := testConfig()
	for _, v := range spectre.Variants() {
		_, m, err := cfg.standaloneRun(AttackSpec{Variant: v}, 5)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if got := m.Output.String(); got != cfg.Secret {
			t.Errorf("%s recovered %q, want %q", v, got, cfg.Secret)
		}
	}
}

func TestCRRunFullChain(t *testing.T) {
	cfg := testConfig()
	host, err := mibench.ByName("math")
	if err != nil {
		t.Fatal(err)
	}
	pp := perturb.Paper()
	cr, err := cfg.crRun(host, AttackSpec{Variant: spectre.V1BoundsCheck, Perturb: &pp}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Injected {
		t.Fatal("ROP chain did not exec the attack binary")
	}
	if cr.Recovered != cfg.Secret {
		t.Errorf("recovered %q, want %q", cr.Recovered, cfg.Secret)
	}
	// The attack resumed the host workload: the host's checksum output
	// follows the leaked secret bytes.
	out := cr.Machine.Output.String()
	if !strings.HasPrefix(out, cfg.Secret) || !strings.HasSuffix(out, host.Expected) {
		t.Errorf("combined output %q missing secret prefix or workload checksum %q", out, host.Expected)
	}
	if len(cr.Samples) == 0 {
		t.Error("no samples collected during CR run")
	}
}

func TestFig4Shape(t *testing.T) {
	cfg := testConfig()
	cfg.SamplesPerClass = 80
	rows, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig4FeatureSizes)*len(Fig4Hosts()) {
		t.Fatalf("got %d rows", len(rows))
	}
	accAt := func(size int) float64 {
		var s float64
		n := 0
		for _, r := range rows {
			if r.FeatureSize == size {
				s += r.Accuracy
				n++
			}
		}
		return s / float64(n)
	}
	// Paper shape: >=4 features comfortably above the 80% detection
	// bar; a single feature is the worst configuration.
	if a := accAt(4); a < 0.85 {
		t.Errorf("4-feature mean accuracy %.3f, want >= 0.85", a)
	}
	if a := accAt(16); a < 0.85 {
		t.Errorf("16-feature mean accuracy %.3f, want >= 0.85", a)
	}
	if accAt(1) >= accAt(16) {
		t.Errorf("single feature (%.3f) not worse than 16 features (%.3f)", accAt(1), accAt(16))
	}
	var buf bytes.Buffer
	RenderFig4(&buf, rows)
	if !strings.Contains(buf.String(), "feature size") {
		t.Error("render missing header")
	}
	buf.Reset()
	Fig4CSV(&buf, rows)
	if !strings.Contains(buf.String(), "host,feature_size,accuracy") {
		t.Error("CSV missing header")
	}
}

func TestFig5OfflineShape(t *testing.T) {
	cfg := testConfig()
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Online {
		t.Fatal("Fig5 must be offline")
	}
	if n := len(res.Plain); n != cfg.Attempts*len(cfg.Classifiers) {
		t.Fatalf("plain panel has %d points", n)
	}
	// Panel (a): plain Spectre stays reliably detected.
	if m := MeanAccuracy(res.Plain); m < 0.85 {
		t.Errorf("plain Spectre mean accuracy %.3f, want >= 0.85", m)
	}
	// Panel (b): CR-Spectre degrades the static detector well below the
	// evasion threshold.
	if m := MeanAccuracy(res.CR); m >= MeanAccuracy(res.Plain) {
		t.Errorf("CR mean %.3f not below plain mean %.3f", m, MeanAccuracy(res.Plain))
	}
	if m := MinAccuracy(res.CR); m > hid.EvadeThreshold {
		t.Errorf("CR min accuracy %.3f never crossed the %.0f%% evasion threshold", m, 100*hid.EvadeThreshold)
	}
	// Degrading trend: last attempt no better than the first.
	for _, c := range cfg.Classifiers {
		pts := Points(res.CR, c)
		if pts[len(pts)-1].Accuracy > pts[0].Accuracy+0.05 {
			t.Errorf("%s: offline CR accuracy rose from %.3f to %.3f", c, pts[0].Accuracy, pts[len(pts)-1].Accuracy)
		}
	}
	// The covert channel kept working under the cloak.
	for _, p := range res.CR {
		if !p.Recovered {
			t.Errorf("attempt %d (%s): secret not recovered", p.Attempt, p.Classifier)
		}
	}
}

func TestFig6OnlineShape(t *testing.T) {
	cfg := testConfig()
	cfg.Attempts = 5
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Online {
		t.Fatal("Fig6 must be online")
	}
	if m := MeanAccuracy(res.Plain); m < 0.85 {
		t.Errorf("plain mean %.3f, want >= 0.85", m)
	}
	// The attack evades at least once...
	if m := MinAccuracy(res.CR); m > hid.EvadeThreshold {
		t.Errorf("online CR min %.3f never evaded", m)
	}
	// ...and the retraining HID recovers at least once (the sawtooth).
	recovered := false
	for _, p := range res.CR {
		if p.Attempt > 1 && p.Accuracy > hid.DetectThreshold {
			recovered = true
		}
	}
	if !recovered {
		t.Error("online HID never recovered above the detection threshold")
	}
	var buf bytes.Buffer
	RenderCampaign(&buf, res, cfg.Classifiers)
	for _, want := range []string{"online-type HID", "CR-Spectre", "min"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	buf.Reset()
	CampaignCSV(&buf, res)
	if !strings.Contains(buf.String(), "panel,classifier,attempt") {
		t.Error("campaign CSV missing header")
	}
}

func TestTable1Shape(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 2
	// CI-sized hosts that still dominate the injected attack.
	workloads := []mibench.Workload{
		mibench.Math(2_000),
		mibench.Bitcount("bitcount_50M", 25_000),
		mibench.SHA1(150),
	}
	rows, err := Table1For(cfg, workloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workloads) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.IPCOriginal <= 0 || r.IPCOffline <= 0 || r.IPCOnline <= 0 {
			t.Errorf("%s: non-positive IPC: %+v", r.Benchmark, r)
		}
		// Perturbation overhead stays small relative to the injected
		// plain-Spectre baseline (paper: 0.6% / 1.1% on average).
		if r.OverheadOffline > 0.10 || r.OverheadOffline < -0.10 {
			t.Errorf("%s: offline overhead %.3f out of band", r.Benchmark, r.OverheadOffline)
		}
		if r.OverheadOnline > 0.15 || r.OverheadOnline < -0.15 {
			t.Errorf("%s: online overhead %.3f out of band", r.Benchmark, r.OverheadOnline)
		}
	}
	off, on := MeanOverheads(rows)
	if off > 0.08 || on > 0.12 {
		t.Errorf("mean overheads %.3f/%.3f larger than the paper's regime", off, on)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Benchmark") {
		t.Error("table render missing header")
	}
	buf.Reset()
	Table1CSV(&buf, rows)
	if !strings.Contains(buf.String(), "benchmark,ipc_original") {
		t.Error("table CSV missing header")
	}
}

func TestSubsample(t *testing.T) {
	in := make([]pmu.Sample, 100)
	for i := range in {
		in[i] = pmu.Sample{float64(i)}
	}
	out := subsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("got %d", len(out))
	}
	if out[0][0] != 0 || out[9][0] < 80 {
		t.Errorf("subsample not spread: first=%v last=%v", out[0][0], out[9][0])
	}
	if got := subsample(in, 200); len(got) != 100 {
		t.Error("oversized request should return all")
	}
	if got := subsample(in, 0); got != nil {
		t.Error("zero request should return nil")
	}
}

func TestEvalMixRatio(t *testing.T) {
	cfg := testConfig()
	attack := newTestSet(40, 1)
	benign := newTestSet(100, 0)
	mix := cfg.evalMix(attack, benign, 3)
	nAttack, nBenign := 0, 0
	for _, y := range mix.Data.Y {
		if y == 1 {
			nAttack++
		} else {
			nBenign++
		}
	}
	if nAttack != 40 {
		t.Errorf("attack rows %d, want 40", nAttack)
	}
	if nBenign != 10 {
		t.Errorf("benign rows %d, want 10 (4:1 mix)", nBenign)
	}
}

func TestDetectionLatency(t *testing.T) {
	cfg := testConfig()
	cfg.SamplesPerClass = 80
	rows, err := DetectionLatency(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Classifiers) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Trajectory) == 0 {
			t.Errorf("%s: empty trajectory", r.Classifier)
		}
		// The fresh variant must not be instantly detected (round 1
		// under the detection threshold) — otherwise there is no
		// latency to measure and the premise is broken.
		if r.Trajectory[0] > 0.8 {
			t.Errorf("%s: fresh variant detected immediately (%.2f)", r.Classifier, r.Trajectory[0])
		}
		if r.BatchesToDetect == 0 {
			t.Errorf("%s: zero is not a valid detection round", r.Classifier)
		}
		if r.BatchesToDetect > 0 {
			last := r.Trajectory[len(r.Trajectory)-1]
			if last <= 0.8 {
				t.Errorf("%s: claims detection at %d but last accuracy %.2f", r.Classifier, r.BatchesToDetect, last)
			}
		}
	}
	var buf bytes.Buffer
	RenderLatency(&buf, rows)
	if !strings.Contains(buf.String(), "batches to detect") {
		t.Error("render missing header")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Attempts = 2
	cfg.SamplesPerClass = 60
	cfg.Classifiers = []string{"lr"}
	a, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CR {
		if a.CR[i].Accuracy != b.CR[i].Accuracy {
			t.Fatalf("run diverged at point %d: %v vs %v", i, a.CR[i].Accuracy, b.CR[i].Accuracy)
		}
	}
	for i := range a.Plain {
		if a.Plain[i].Accuracy != b.Plain[i].Accuracy {
			t.Fatalf("plain diverged at %d", i)
		}
	}
}

func TestVariantRecycling(t *testing.T) {
	cfg := testConfig()
	cfg.SamplesPerClass = 120
	rows, err := VariantRecycling(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d phases", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Phase != "A first strike" || first.Verdict != hid.VerdictEvaded {
		t.Errorf("fresh variant not evading: %+v", first)
	}
	// The detector must have caught A at some point in phase 1.
	caught := false
	for _, r := range rows[:len(rows)-2] {
		if r.Verdict == hid.VerdictDetected {
			caught = true
		}
	}
	if !caught {
		t.Error("windowed HID never caught variant A")
	}
	if last.Phase != "A recycled" {
		t.Fatalf("last phase = %q", last.Phase)
	}
	if last.Accuracy > hid.EvadeThreshold {
		t.Errorf("recycled variant detected at %.2f; forgetting not demonstrated", last.Accuracy)
	}
	var buf bytes.Buffer
	RenderRecycling(&buf, rows)
	if !strings.Contains(buf.String(), "A recycled") {
		t.Error("render missing phases")
	}
}

func TestRunLevelDetection(t *testing.T) {
	cfg := testConfig()
	cfg.SamplesPerClass = 150
	rows, err := RunLevelDetection(cfg, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]AlarmRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	any := byPolicy["any-sample"]
	perRun := byPolicy["3-per-run"]
	if any.CRDetected != any.CRRuns {
		t.Errorf("any-sample missed CR runs: %+v", any)
	}
	// The headline: a modest per-run count threshold keeps full CR
	// detection while cutting benign false alarms relative to the
	// any-sample rule.
	if perRun.CRDetected != perRun.CRRuns {
		t.Errorf("3-per-run missed CR runs: %+v", perRun)
	}
	if perRun.BenignAlarms > any.BenignAlarms {
		t.Errorf("3-per-run (%d FPs) worse than any-sample (%d FPs)", perRun.BenignAlarms, any.BenignAlarms)
	}
	var buf bytes.Buffer
	RenderAlarms(&buf, rows)
	if !strings.Contains(buf.String(), "policy") {
		t.Error("render missing header")
	}
}

func TestAlarmPolicyFires(t *testing.T) {
	seq := []int{0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1}
	cases := []struct {
		p    AlarmPolicy
		want bool
	}{
		{AlarmPolicy{1, 1}, true},
		{AlarmPolicy{2, 3}, true},  // positions 10 and 12 are within 3
		{AlarmPolicy{2, 2}, false}, // never adjacent
		{AlarmPolicy{3, 0}, true},  // 3 in the whole run
		{AlarmPolicy{4, 0}, false},
	}
	for _, tc := range cases {
		if got := tc.p.Fires(seq); got != tc.want {
			t.Errorf("%s fires = %v, want %v", tc.p, got, tc.want)
		}
	}
	if (AlarmPolicy{K: 1, W: 1}).Fires([]int{0, 0, 0}) {
		t.Error("clean sequence fired")
	}
}

func TestEnsembleComparison(t *testing.T) {
	cfg := testConfig()
	cfg.SamplesPerClass = 100
	rows, err := EnsembleComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 4 classifiers + ensemble, at 2 feature sizes
		t.Fatalf("got %d rows", len(rows))
	}
	// The diluted variant evades every pointwise detector — committee
	// included — at the paper's 4-feature operating point: the mimicry
	// is in the features, not the model.
	for _, r := range rows {
		if r.FeatureSize == 4 && r.Accuracy > hid.DetectThreshold {
			t.Errorf("%s unexpectedly detected the diluted variant pointwise (%.2f)", r.Detector, r.Accuracy)
		}
	}
	var buf bytes.Buffer
	RenderEnsemble(&buf, rows)
	if !strings.Contains(buf.String(), "ensemble") {
		t.Error("render missing ensemble row")
	}
}

// TestCRRunAllVariants: the ROP-injected flow must deliver the secret
// for every speculation primitive, not just v1.
func TestCRRunAllVariants(t *testing.T) {
	cfg := testConfig()
	host, err := mibench.ByName("math")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range spectre.Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			cr, err := cfg.crRun(host, AttackSpec{Variant: v}, 21)
			if err != nil {
				t.Fatal(err)
			}
			if !cr.Injected || cr.Recovered != cfg.Secret {
				t.Errorf("injected=%v recovered=%q", cr.Injected, cr.Recovered)
			}
		})
	}
}

// TestBenignRunNeverTriggersInjection: a benign argument through the
// full experiment machinery must never reach the EXEC syscall.
func TestBenignRunNeverTriggersInjection(t *testing.T) {
	cfg := testConfig()
	for _, w := range mibench.Suite()[:2] {
		_, m, err := cfg.benignRun(w, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.ExecLog) != 0 {
			t.Errorf("%s benign run exec'd %v", w.Name, m.ExecLog)
		}
		if !strings.HasSuffix(m.Output.String(), w.Expected) {
			t.Errorf("%s benign output %q missing checksum", w.Name, m.Output.String())
		}
	}
}

// TestCRSamplesCarryInjectionSignature: the ROP phase's return
// mispredictions must be visible in the sampled trace (the HID-visible
// fingerprint the paper's injection leaves).
func TestCRSamplesCarryInjectionSignature(t *testing.T) {
	cfg := testConfig()
	host, err := mibench.ByName("math")
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cfg.crRun(host, AttackSpec{Variant: spectre.V1BoundsCheck}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Machine.CPU.BP.Stats.ReturnMispred < 2 {
		t.Errorf("CR run recorded only %d return mispredictions", cr.Machine.CPU.BP.Stats.ReturnMispred)
	}
}
