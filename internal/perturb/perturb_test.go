package perturb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestPaperParameters(t *testing.T) {
	p := Paper()
	// Algorithm 2 line 2: a=11, b=6; lines 7/12: +50/+10; line 3: 10
	// iterations.
	if p.A != 11 || p.B != 6 || p.IncA != 50 || p.IncB != 10 || p.Loops != 10 {
		t.Errorf("paper variant = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAsmAssemblesAndRuns(t *testing.T) {
	src := ".entry main\nmain:\n\tcall perturb\n\thalt\n" + Paper().Asm() + "\n.data\n" + DataAsm()
	mod, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("perturb asm does not assemble: %v", err)
	}
	if mod.NumInstructions() < 20 {
		t.Error("perturb routine suspiciously small")
	}
}

func TestAsmContainsAlgorithmStructure(t *testing.T) {
	asm := Paper().Asm()
	for _, want := range []string{"clflush", "mfence", "perturb:", "pt_loop", "ret"} {
		if !strings.Contains(asm, want) {
			t.Errorf("asm missing %q", want)
		}
	}
	// clflush count: the A-block flushes once, the B-block twice, per
	// Algorithm 2's lines 5, 10 and 13.
	if n := strings.Count(asm, "clflush"); n != 3 {
		t.Errorf("expected 3 clflush sites per block, found %d", n)
	}
	// Two blocks doubles the flush sites.
	p := Paper()
	p.Blocks = 2
	if n := strings.Count(p.Asm(), "clflush"); n != 6 {
		t.Errorf("expected 6 clflush sites with 2 blocks, found %d", n)
	}
}

func TestDelayEmitsDispersionLoop(t *testing.T) {
	p := Paper()
	if strings.Contains(p.Asm(), "pt_delay") {
		t.Error("zero-delay variant emitted a delay loop")
	}
	p.Delay = 50
	if !strings.Contains(p.Asm(), "pt_delay") {
		t.Error("delay variant missing dispersion loop")
	}
}

func TestScaled(t *testing.T) {
	if Scaled(3).Loops != 30 {
		t.Errorf("Scaled(3).Loops = %d", Scaled(3).Loops)
	}
	if Scaled(0).Loops != 10 {
		t.Errorf("Scaled(0) should clamp to 1x, got %d loops", Scaled(0).Loops)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Loops: 0, Blocks: 1},
		{Loops: 10, Blocks: 0},
		{Loops: 1 << 20, Blocks: 1},
		{Loops: 10, Blocks: 1, Delay: -1},
		{Loops: 10, Blocks: 100},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("accepted %+v", p)
		}
	}
}

func TestAsmPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Asm accepted invalid params")
		}
	}()
	_ = Params{}.Asm()
}

// Property: every mutation is valid, assemblable, and terminates (loop
// counters bounded).
func TestQuickMutateAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := Paper()
	f := func() bool {
		p = p.Mutate(rng)
		if p.Validate() != nil {
			return false
		}
		src := "halt\n" + p.Asm() + "\n.data\n" + DataAsm()
		_, err := isa.Assemble(src)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMutateMovesParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Paper()
	distinct := 0
	prev := p
	for i := 0; i < 10; i++ {
		next := prev.Mutate(rng)
		if next != prev {
			distinct++
		}
		prev = next
	}
	if distinct < 9 {
		t.Errorf("only %d/10 mutations changed parameters", distinct)
	}
}

func TestNoneIsNoOp(t *testing.T) {
	src := ".entry main\nmain:\n\tcall perturb\n\thalt\n" + None()
	if _, err := isa.Assemble(src); err != nil {
		t.Fatalf("None() does not assemble: %v", err)
	}
}

func TestStringIdentifiesVariant(t *testing.T) {
	s := Paper().String()
	for _, want := range []string{"a=11", "b=6", "loops=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
