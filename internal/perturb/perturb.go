// Package perturb implements the paper's §II-E defense-aware dynamic
// perturbation generator (Algorithm 2): a parameterised routine of
// conditional blocks that CLFLUSH attack-owned data and MFENCE between
// operations, contaminating the cache-miss, branch and instruction-count
// HPCs the HID is trained on. Each parameter set ("variant") produces a
// distinct HPC signature; Mutate derives new variants when the HID
// catches the current one.
package perturb

import (
	"fmt"
	"math/rand"
	"strings"
)

// Params is one perturbation variant — the knobs of Algorithm 2.
type Params struct {
	// A and B are the initial values of the paper's `a` and `b` loop
	// variables (Algorithm 2 line 2: a=11, b=6).
	A int64
	B int64
	// IncA and IncB are the per-iteration increments (lines 7 and 12:
	// +50 and +10).
	IncA int64
	IncB int64
	// Loops is the outer iteration count (line 3: 10).
	Loops int64
	// Blocks repeats the conditional flush blocks ("more loops can be
	// added here", line 16).
	Blocks int
	// Delay inserts a busy-wait of this many iterations between outer
	// loop iterations, dispersing the perturbation in time so the HPC
	// deltas can also *shrink* per sampling interval (§II-E's closing
	// remark).
	Delay int64
}

// Paper returns the variant exactly as written in Algorithm 2.
func Paper() Params {
	return Params{A: 11, B: 6, IncA: 50, IncB: 10, Loops: 10, Blocks: 1}
}

// Scaled returns the paper variant with the outer loop scaled by k —
// the "intensity" used by the offline-HID schedule.
func Scaled(k int64) Params {
	p := Paper()
	if k < 1 {
		k = 1
	}
	p.Loops = 10 * k
	return p
}

// Validate reports whether the parameters produce a terminating,
// assemblable routine.
func (p Params) Validate() error {
	if p.Loops <= 0 {
		return fmt.Errorf("perturb: Loops must be positive, got %d", p.Loops)
	}
	if p.Blocks <= 0 {
		return fmt.Errorf("perturb: Blocks must be positive, got %d", p.Blocks)
	}
	if p.Loops > 1<<16 || p.Blocks > 64 || p.Delay < 0 || p.Delay > 1<<16 {
		return fmt.Errorf("perturb: parameters out of range: %+v", p)
	}
	return nil
}

// Mutate derives a new variant from p using the supplied RNG. The
// mutation keeps the routine's shape but moves every parameter, so the
// generated HPC pattern shifts away from what an online HID has learned.
func (p Params) Mutate(rng *rand.Rand) Params {
	q := p
	q.A = 1 + rng.Int63n(64)
	q.B = 1 + rng.Int63n(32)
	q.IncA = 10 + rng.Int63n(90)
	q.IncB = 5 + rng.Int63n(45)
	q.Loops = 4 + rng.Int63n(28)
	q.Blocks = 1 + rng.Intn(4)
	if rng.Intn(2) == 0 {
		q.Delay = rng.Int63n(200)
	} else {
		q.Delay = 0
	}
	return q
}

// String identifies the variant compactly (for experiment logs).
func (p Params) String() string {
	return fmt.Sprintf("perturb{a=%d b=%d +%d/+%d loops=%d blocks=%d delay=%d}",
		p.A, p.B, p.IncA, p.IncB, p.Loops, p.Blocks, p.Delay)
}

// Asm emits the `perturb:` routine plus its data slots. The routine
// clobbers r3..r8 and follows Algorithm 2: for i in [0,Loops), each
// block tests its loop variable against i, flushes the variable's memory
// slot, fences, and advances the variable (the B-style blocks flush
// twice, once after +IncB and once after reverting, per lines 9-15).
//
// The caller assembles this into the attack binary and `call perturb`s
// it from the leak loop, so the perturbation contaminates the same
// process trace the HID samples.
func (p Params) Asm() string {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "perturb:\n")
	fmt.Fprintf(&b, "\tmovi r3, 0\n")       // i
	fmt.Fprintf(&b, "\tmovi r4, %d\n", p.A) // a
	fmt.Fprintf(&b, "\tmovi r5, %d\n", p.B) // b
	fmt.Fprintf(&b, "pt_loop:\n")
	fmt.Fprintf(&b, "\tcmpi r3, %d\n", p.Loops)
	fmt.Fprintf(&b, "\tjae pt_done\n")
	for blk := 0; blk < p.Blocks; blk++ {
		// if (i < a) { clflush(&a); mfence; a += IncA }
		fmt.Fprintf(&b, "\tcmp r3, r4\n")
		fmt.Fprintf(&b, "\tjae pt_skip_a_%d\n", blk)
		fmt.Fprintf(&b, "\tmovi r6, pt_var_a\n")
		fmt.Fprintf(&b, "\tstore [r6], r4\n")
		fmt.Fprintf(&b, "\tclflush [r6]\n")
		fmt.Fprintf(&b, "\tmfence\n")
		fmt.Fprintf(&b, "\taddi r4, r4, %d\n", p.IncA)
		fmt.Fprintf(&b, "pt_skip_a_%d:\n", blk)
		// if (i < b) { clflush(&b); mfence; b += IncB; clflush(&b);
		//              mfence; b -= IncB }
		fmt.Fprintf(&b, "\tcmp r3, r5\n")
		fmt.Fprintf(&b, "\tjae pt_skip_b_%d\n", blk)
		fmt.Fprintf(&b, "\tmovi r7, pt_var_b\n")
		fmt.Fprintf(&b, "\tstore [r7], r5\n")
		fmt.Fprintf(&b, "\tclflush [r7]\n")
		fmt.Fprintf(&b, "\tmfence\n")
		fmt.Fprintf(&b, "\taddi r5, r5, %d\n", p.IncB)
		fmt.Fprintf(&b, "\tstore [r7], r5\n")
		fmt.Fprintf(&b, "\tclflush [r7]\n")
		fmt.Fprintf(&b, "\tmfence\n")
		fmt.Fprintf(&b, "\tsubi r5, r5, %d\n", p.IncB)
		fmt.Fprintf(&b, "pt_skip_b_%d:\n", blk)
	}
	if p.Delay > 0 {
		// Dispersion delay: spread the flush bursts across sampling
		// intervals.
		fmt.Fprintf(&b, "\tmovi r8, %d\n", p.Delay)
		fmt.Fprintf(&b, "pt_delay:\n")
		fmt.Fprintf(&b, "\tsubi r8, r8, 1\n")
		fmt.Fprintf(&b, "\tcmpi r8, 0\n")
		fmt.Fprintf(&b, "\tjne pt_delay\n")
	}
	fmt.Fprintf(&b, "\taddi r3, r3, 1\n")
	fmt.Fprintf(&b, "\tjmp pt_loop\n")
	fmt.Fprintf(&b, "pt_done:\n")
	fmt.Fprintf(&b, "\tret\n")
	return b.String()
}

// DataAsm emits the data slots the routine flushes. Assemble it into the
// attack binary's data section exactly once.
func DataAsm() string {
	return `
.align 64
pt_var_a: .word 0
.align 64
pt_var_b: .word 0
`
}

// None is a no-op stand-in so the same codegen path builds unperturbed
// Spectre binaries ("perturb:" just returns).
func None() string {
	return "perturb:\n\tret\n"
}
