package controlapi

import (
	"context"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/telemetry"
)

// State is one vertex of the job lifecycle state machine.
type State string

// The job states. Transitions: queued→running (a concurrency slot was
// acquired), queued→cancelled (cancel or drain before a slot freed),
// running→{done, failed, cancelled}. The three right-hand states are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final: the job's goroutine has
// exited, its artifacts (including the manifest) are flushed, and its
// event stream has ended.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the wire form of one job's lifecycle snapshot — the
// /jobs/{id} document and the element of the /jobs listing.
type JobStatus struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	// Error carries the failure (or cancellation) detail for terminal
	// non-done states.
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`            // RFC 3339 UTC
	Started  string `json:"started,omitempty"`  // set on queued→running
	Finished string `json:"finished,omitempty"` // set on the terminal transition
	// Progress is the live per-pool campaign progress of a running job
	// (the same shape the obs /progress endpoint serves).
	Progress []sched.PoolProgress `json:"progress,omitempty"`
	// Artifacts lists the job's artifact files, populated once terminal.
	Artifacts []Artifact `json:"artifacts,omitempty"`
}

// Artifact is one entry of a job's artifact listing.
type Artifact struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// job is the daemon-side job record. The telemetry sinks are per-job —
// a fresh recorder, registry and tracker each — so one job's events,
// metrics and manifest never bleed into another's (multi-tenant
// isolation, and the precondition for manifest byte-identity with a
// solo CLI run).
type job struct {
	id  string
	dir string // artifact directory

	rec     *telemetry.Recorder
	reg     *telemetry.Registry
	tracker *sched.Tracker

	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state with every
	// artifact flushed; the event stream and WaitDone-style pollers key
	// off it.
	done chan struct{}

	mu              sync.Mutex
	spec            JobSpec
	state           State
	errMsg          string
	cancelRequested bool
	created         time.Time
	started         time.Time
	finished        time.Time
}

// toRunning transitions queued→running; it fails when a cancel won the
// race.
func (j *job) toRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued || j.cancelRequested {
		return false
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	return true
}

// finish records the terminal transition. The caller closes j.done
// afterwards (once artifacts are flushed).
func (j *job) finish(s State, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.errMsg = errMsg
	j.finished = time.Now().UTC()
}

// requestCancel marks the job cancelled-by-request and fires its
// context. The second and later calls report alreadyRequested so the
// cancel endpoint can 409 on double-cancel; terminal reports the job
// was already finished.
func (j *job) requestCancel() (alreadyRequested, terminal bool) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false, true
	}
	if j.cancelRequested {
		j.mu.Unlock()
		return true, false
	}
	j.cancelRequested = true
	j.mu.Unlock()
	j.cancel()
	return false, false
}

// cancelled reports whether a cancel was requested (used by the runner
// to classify a context-cancellation error as StateCancelled rather
// than StateFailed).
func (j *job) cancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// status snapshots the job for the wire. Artifact listing is the
// caller's concern (it touches the filesystem).
func (j *job) status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Spec:    j.spec,
		Error:   j.errMsg,
		Created: j.created.Format(time.RFC3339),
	}
	if !j.started.IsZero() {
		st.Started = j.started.Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.Format(time.RFC3339)
	}
	j.mu.Unlock()
	if st.State == StateRunning {
		st.Progress = j.tracker.Progress()
	}
	return st
}
