// End-to-end lifecycle suite for the crspectred control API: a real
// controlapi.Server behind httptest, driven through the public client
// package — the same stack a production deployment runs minus the TCP
// listener. Everything here must stay clean under -race; the daemon is
// precisely the component whose bugs are interleavings.
package controlapi_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/controlapi"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// newDaemon stands up a Server with the given concurrency limit behind
// httptest and returns a client wired to it. Cleanup closes the HTTP
// layer first, then cancels whatever jobs are still running.
func newDaemon(t *testing.T, maxJobs int) (*controlapi.Server, *client.Client) {
	t.Helper()
	srv, err := controlapi.New(controlapi.Options{
		DataDir: t.TempDir(),
		MaxJobs: maxJobs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close() // terminal states close job streams, unblocking handlers
		ts.Close()
	})
	return srv, client.New(ts.URL)
}

// tinyFig4 is the CI-scale campaign spec every lifecycle test runs:
// sub-second on one core, yet through the full engine path.
func tinyFig4(id string, workers int) controlapi.JobSpec {
	return controlapi.JobSpec{
		ID: id, Kind: "fig4",
		Samples: 10, Attempts: 1, Seed: 7, Workers: workers,
	}
}

// slowAttack is a multi-second workload (about 3ms per rep, serialised
// by workers=1) for the cancel / queue / drain tests. Cancellation cuts
// in on rep granularity, so these tests stay fast on the happy path.
func slowAttack(id string) controlapi.JobSpec {
	return controlapi.JobSpec{
		ID: id, Kind: "attack",
		Reps: 20_000, Workers: 1, Seed: 3,
		Variant: "v1-bounds-check", Posture: "dep",
	}
}

// waitForState polls until the job reaches want (terminal or not).
func waitForState(t *testing.T, c *client.Client, id string, want controlapi.State) controlapi.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLifecycleEndToEnd is the happy path: submit → queued/running →
// events stream → done → artifact fetch, all through the client.
func TestLifecycleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real fig4 campaign; minutes under -race")
	}
	_, c := newDaemon(t, 2)
	ctx := context.Background()

	st, err := c.Submit(ctx, tinyFig4("e2e-fig4", 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "e2e-fig4" {
		t.Fatalf("submit echoed ID %q, want the client-supplied one", st.ID)
	}
	if st.State != controlapi.StateQueued && st.State != controlapi.StateRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}

	// Stream events concurrently with the run; the reader must terminate
	// on its own once the job finishes (the done-bounded stream).
	events, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	type line struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
	}
	kinds := make(chan map[string]int, 1)
	go func() {
		defer events.Close()
		seen := make(map[string]int)
		sc := bufio.NewScanner(events)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			var l line
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				t.Errorf("bad event line %q: %v", sc.Text(), err)
				continue
			}
			seen[l.Kind]++
		}
		kinds <- seen
	}()

	final, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != controlapi.StateDone {
		t.Fatalf("job finished %q (err %q), want done", final.State, final.Error)
	}
	if final.Started == "" || final.Finished == "" {
		t.Errorf("terminal status missing timestamps: %+v", final)
	}

	select {
	case seen := <-kinds:
		if seen["task_start"] == 0 || seen["task_stop"] == 0 {
			t.Errorf("event stream missing scheduler lifecycle events: %v", seen)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not terminate after the job finished")
	}

	arts, err := c.Artifacts(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]int64, len(arts))
	for _, a := range arts {
		names[a.Name] = a.Size
	}
	for _, want := range []string{"manifest.json", "fig4.csv", "job.log", "trace.json"} {
		if sz, ok := names[want]; !ok || sz == 0 {
			t.Errorf("artifact %s missing or empty (have %v)", want, names)
		}
	}
	if len(final.Artifacts) == 0 {
		t.Error("terminal status did not embed the artifact listing")
	}

	var buf bytes.Buffer
	if _, err := c.Fetch(ctx, st.ID, "manifest.json", &buf); err != nil {
		t.Fatal(err)
	}
	var m telemetry.Manifest
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Tool != "experiments" || m.Seed != 7 || len(m.Events) == 0 || len(m.Progress) == 0 {
		t.Errorf("manifest content off: tool=%q seed=%d events=%d progress=%d",
			m.Tool, m.Seed, len(m.Events), len(m.Progress))
	}
}

// TestManifestWorkerInvariance pins the tentpole's byte-identity
// contract: the manifest of a daemon job equals — after ZeroVolatile
// and the informational Workers field, the repo-wide convention — both
// a daemon run at a different worker count and a direct
// experiments.RunCampaign call (the cmd/experiments path).
func TestManifestWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three fig4 campaigns; minutes under -race")
	}
	_, c := newDaemon(t, 2)
	ctx := context.Background()

	normalize := func(raw []byte) []byte {
		var m telemetry.Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("manifest: %v", err)
		}
		m.ZeroVolatile()
		m.Workers = 0
		out, err := m.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	daemonManifest := func(id string, workers int) []byte {
		if _, err := c.Submit(ctx, tinyFig4(id, workers)); err != nil {
			t.Fatal(err)
		}
		st, err := c.WaitDone(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != controlapi.StateDone {
			t.Fatalf("job %s finished %q: %s", id, st.State, st.Error)
		}
		var buf bytes.Buffer
		if _, err := c.Fetch(ctx, id, "manifest.json", &buf); err != nil {
			t.Fatal(err)
		}
		return normalize(buf.Bytes())
	}

	// The CLI path, inline: same engine entry point, same manifest flow
	// as cmd/experiments.
	cliManifest := func(workers int) []byte {
		cfg := experiments.DefaultConfig()
		cfg.SamplesPerClass = 10
		cfg.Attempts = 1
		cfg.Seed = 7
		cfg.Workers = workers
		cfg.Telemetry = telemetry.NewRecorder(0)
		cfg.Telemetry.Exclude(telemetry.KindRetire)
		cfg.Metrics = telemetry.NewRegistry()
		cfg.Tracker = sched.NewTracker(cfg.Metrics, cfg.Telemetry, nil)
		start := time.Now()
		m := cfg.Manifest("experiments", nil)
		dir := t.TempDir()
		if err := experiments.RunCampaign(cfg, experiments.CampaignSpec{Fig4: true}, io.Discard, dir); err != nil {
			t.Fatal(err)
		}
		cfg.FinishManifest(m, start)
		raw, err := m.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return normalize(raw)
	}

	w1 := daemonManifest("inv-w1", 1)
	w3 := daemonManifest("inv-w3", 3)
	cli := cliManifest(2)
	if !bytes.Equal(w1, w3) {
		t.Errorf("daemon manifests differ across worker counts:\n%s\n---\n%s", w1, w3)
	}
	if !bytes.Equal(w1, cli) {
		t.Errorf("daemon and CLI-path manifests differ:\n%s\n---\n%s", w1, cli)
	}

	// And the CSV series itself is identical, not just the provenance.
	csvAt := func(id string) []byte {
		var buf bytes.Buffer
		if _, err := c.Fetch(ctx, id, "fig4.csv", &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(csvAt("inv-w1"), csvAt("inv-w3")) {
		t.Error("fig4.csv differs across worker counts")
	}
}

// TestCancelMidRun cancels a running job and requires the terminal
// cancelled state, a flushed manifest, and a terminating event stream.
func TestCancelMidRun(t *testing.T) {
	srv, c := newDaemon(t, 2)
	ctx := context.Background()

	st, err := c.Submit(ctx, slowAttack("cancel-me"))
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, st.ID, controlapi.StateRunning)

	events, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		defer events.Close()
		_, _ = io.Copy(io.Discard, events)
	}()

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != controlapi.StateCancelled {
		t.Fatalf("cancelled job finished %q, want cancelled", final.State)
	}

	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("event stream did not terminate after cancellation")
	}

	// Even a cancelled job leaves a provenance record.
	mpath := filepath.Join(srv.DataDir(), st.ID, "manifest.json")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("cancelled job left no manifest: %v", err)
	}
	var m telemetry.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("cancelled job's manifest is malformed: %v", err)
	}
	if m.Tool != "crspectred" {
		t.Errorf("attack manifest tool %q, want crspectred", m.Tool)
	}
	// But no results artifact: the run did not complete.
	if _, err := os.Stat(filepath.Join(srv.DataDir(), st.ID, "attack.json")); err == nil {
		t.Error("cancelled job wrote attack.json")
	}
}

// TestQueueBeyondLimit submits past MaxJobs=1 and requires the overflow
// jobs to be observably queued, to cancel cleanly from the queue, and
// to run once the slot frees.
func TestQueueBeyondLimit(t *testing.T) {
	_, c := newDaemon(t, 1)
	ctx := context.Background()

	if _, err := c.Submit(ctx, slowAttack("q-hog")); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, "q-hog", controlapi.StateRunning)

	if _, err := c.Submit(ctx, tinyFig4("q-next", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, slowAttack("q-doomed")); err != nil {
		t.Fatal(err)
	}
	// With the only slot held, both stay queued — observable state, not
	// an implementation accident.
	for _, id := range []string{"q-next", "q-doomed"} {
		if st, err := c.Status(ctx, id); err != nil || st.State != controlapi.StateQueued {
			t.Fatalf("job %s: state %v err %v, want queued behind the limit", id, st.State, err)
		}
	}

	// Cancelling a queued job must not wait for a slot.
	if _, err := c.Cancel(ctx, "q-doomed"); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitDone(ctx, "q-doomed")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != controlapi.StateCancelled || !strings.Contains(st.Error, "queued") {
		t.Errorf("queued cancel: state %q err %q, want cancelled while queued", st.State, st.Error)
	}

	// Free the slot; the queued job must run to completion.
	if _, err := c.Cancel(ctx, "q-hog"); err != nil {
		t.Fatal(err)
	}
	if st, err := c.WaitDone(ctx, "q-next"); err != nil || st.State != controlapi.StateDone {
		t.Fatalf("queued job after slot freed: state %v err %v, want done", st.State, err)
	}
}

// TestDrainWithInflight exercises the SIGTERM path: draining rejects
// new submissions with 503 while the in-flight job is seen through to a
// terminal state with its manifest flushed.
func TestDrainWithInflight(t *testing.T) {
	srv, c := newDaemon(t, 2)
	ctx := context.Background()

	if _, err := c.Submit(ctx, slowAttack("drain-victim")); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, "drain-victim", controlapi.StateRunning)

	// A short drain budget: the job cannot finish 20k reps in 150ms, so
	// drain must cancel it and still return promptly.
	dctx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		srv.Drain(dctx)
		close(drained)
	}()

	// Draining daemons refuse work; raw HTTP, because the client would
	// treat the 503 as transient and ride it out.
	for {
		_, err := c.Status(ctx, "drain-victim")
		if err != nil {
			t.Fatal(err)
		}
		if srv.Draining() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	raw, err := http.Post(baseOf(t, c)+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fig4"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: HTTP %d, want 503", raw.StatusCode)
	}

	select {
	case <-drained:
	case <-time.After(20 * time.Second):
		t.Fatal("Drain did not return after its budget expired")
	}
	st, err := c.Status(ctx, "drain-victim")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != controlapi.StateCancelled {
		t.Fatalf("in-flight job after over-budget drain: %q, want cancelled", st.State)
	}
	if _, err := os.Stat(filepath.Join(srv.DataDir(), "drain-victim", "manifest.json")); err != nil {
		t.Errorf("drained job left no manifest: %v", err)
	}
}

// TestCancelAndLookupErrors pins the error contract: unknown IDs 404,
// double-cancel and cancel-after-terminal 409 — through the client, so
// the *APIError surfacing is covered too.
func TestCancelAndLookupErrors(t *testing.T) {
	_, c := newDaemon(t, 2)
	ctx := context.Background()

	wantAPIErr := func(err error, code int, op string) {
		t.Helper()
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != code {
			t.Fatalf("%s: got %v, want APIError %d", op, err, code)
		}
	}

	_, err := c.Cancel(ctx, "no-such-job")
	wantAPIErr(err, http.StatusNotFound, "cancel unknown")
	_, err = c.Status(ctx, "no-such-job")
	wantAPIErr(err, http.StatusNotFound, "status unknown")
	_, err = c.Events(ctx, "no-such-job")
	wantAPIErr(err, http.StatusNotFound, "events unknown")
	var sink bytes.Buffer
	_, err = c.Fetch(ctx, "no-such-job", "manifest.json", &sink)
	wantAPIErr(err, http.StatusNotFound, "fetch unknown")

	if _, err := c.Submit(ctx, slowAttack("err-double")); err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, "err-double", controlapi.StateRunning)
	if _, err := c.Cancel(ctx, "err-double"); err != nil {
		t.Fatalf("first cancel: %v", err)
	}
	_, err = c.Cancel(ctx, "err-double")
	wantAPIErr(err, http.StatusConflict, "double cancel")
	if _, err := c.WaitDone(ctx, "err-double"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Cancel(ctx, "err-double")
	wantAPIErr(err, http.StatusConflict, "cancel terminal")

	// Path traversal in artifact names is a 400, not a file read.
	_, err = c.Fetch(ctx, "err-double", "..%2F..%2Fetc%2Fpasswd", &sink)
	wantAPIErr(err, http.StatusBadRequest, "traversal fetch")
}

// TestSubmitValidation: every malformed or out-of-domain payload is a
// 400 with no job spawned — the property FuzzJobSpecDecode generalises.
func TestSubmitValidation(t *testing.T) {
	_, c := newDaemon(t, 2)
	base := baseOf(t, c)

	bad := []string{
		``,                                   // empty
		`{`,                                  // truncated
		`[]`,                                 // wrong shape
		`{"kind":"fig9"}`,                    // unknown kind
		`{"kind":"attack","variant":"v99"}`,  // unknown variant
		`{"kind":"attack","posture":"magic"}`,// unknown posture
		`{"kind":"fig4","samples":-1}`,       // negative
		`{"kind":"fig4","workers":1000000}`,  // over cap
		`{"kind":"fig4","bogus":true}`,       // unknown field
		`{"kind":"fig4"}{"kind":"fig4"}`,     // trailing document
		`{"kind":"fig4","id":"../escape"}`,   // traversal ID
	}
	for _, payload := range bad {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: HTTP %d (%s), want 400", payload, resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	// None of those may have spawned a job.
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Jobs []controlapi.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 0 {
		t.Errorf("rejected submissions spawned %d job(s)", len(listing.Jobs))
	}
}

// TestSubmitIdempotent: re-submitting an ID the daemon knows returns
// the existing job (HTTP 200 path) instead of spawning a duplicate.
func TestSubmitIdempotent(t *testing.T) {
	_, c := newDaemon(t, 1)
	ctx := context.Background()

	spec := slowAttack("dedupe-1")
	first, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("re-submission created a new job %q", second.ID)
	}
	resp, err := http.Get(baseOf(t, c) + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Jobs []controlapi.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 {
		t.Fatalf("dedupe failed: %d jobs after double submit", len(listing.Jobs))
	}
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDone(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}

// baseOf extracts the daemon base URL back out of a client (the tests
// occasionally need raw HTTP access to assert on status codes the
// client would wrap or retry).
func baseOf(t *testing.T, c *client.Client) string {
	t.Helper()
	return c.BaseURL()
}

