package controlapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/defense"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/telemetry"
)

// Options configures a daemon instance.
type Options struct {
	// DataDir is the artifact root; each job owns the subdirectory named
	// by its ID. Empty creates a fresh temporary directory.
	DataDir string
	// MaxJobs bounds how many jobs *run* concurrently; submissions
	// beyond it queue (observably: their state stays "queued"). <= 0
	// selects 2.
	MaxJobs int
	// DefaultWorkers is the per-job sched fan-out used when a job spec
	// leaves Workers at 0. <= 0 selects all cores, like every CLI.
	DefaultWorkers int
	// RunID identifies this daemon process (telemetry.NewRunID); it is
	// stamped into every job manifest's run_id.
	RunID string
	// Log receives request and lifecycle logging; nil disables.
	Log *slog.Logger
}

// Server is the daemon: job registry, queue, executor pool, and HTTP
// surface. Create with New, serve Handler, stop with Drain (graceful)
// or Close (immediate).
type Server struct {
	opts Options
	mux  *http.ServeMux
	reg  *telemetry.Registry // daemon-level metrics (job lifecycle counts)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	sem      chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
}

// New builds a daemon. The data directory is created eagerly so a
// misconfigured path fails at startup, not at first submission.
func New(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		dir, err := os.MkdirTemp("", "crspectred-*")
		if err != nil {
			return nil, fmt.Errorf("controlapi: %w", err)
		}
		opts.DataDir = dir
	} else if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("controlapi: %w", err)
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 2
	}
	if opts.RunID == "" {
		opts.RunID = telemetry.NewRunID()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		reg:        telemetry.NewRegistry(),
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, opts.MaxJobs),
		jobs:       make(map[string]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /jobs/{id}/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", s.handleArtifact)
	// The embedded observability surface: /healthz, /buildz, /metrics
	// (the daemon-level registry), /debug/pprof. Register skips patterns
	// the daemon already claimed, so the two surfaces cannot collide
	// however often this runs (the double-registration regression).
	obs.Register(s.mux, obs.Options{
		Tool:     "crspectred",
		RunID:    opts.RunID,
		Registry: s.reg,
		Log:      opts.Log,
	})
	return s, nil
}

// DataDir reports the artifact root (useful with the temp-dir default).
func (s *Server) DataDir() string { return s.opts.DataDir }

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	if s.opts.Log == nil {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.mux.ServeHTTP(w, r)
		s.opts.Log.Info("controlapi request",
			"method", r.Method, "path", r.URL.Path, "remote", r.RemoteAddr,
			"dur_ms", time.Since(t0).Milliseconds())
	})
}

// Drain is the SIGTERM path: stop accepting new jobs, wait for
// in-flight and queued jobs to finish, and — once ctx expires — cancel
// whatever is still running. Every runner flushes its manifest before
// exiting, so even a cancelled job leaves a provenance record. Drain
// returns when the last job goroutine has exited.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
	}
}

// Close cancels every job immediately and waits for the runners to
// flush and exit — the non-graceful stop, and the test-suite cleanup.
func (s *Server) Close() {
	s.draining.Store(true)
	s.baseCancel()
	s.wg.Wait()
}

// Draining reports whether the daemon has stopped accepting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// jobByID looks a job up.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// handleIndex is the discovery document: what this daemon runs and the
// vocabularies job specs draw from.
func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"service":  "crspectred",
		"run_id":   s.opts.RunID,
		"kinds":    JobKinds(),
		"variants": spectre.VariantNames(),
		"postures": defense.PostureNames(),
		"max_jobs": s.opts.MaxJobs,
		"draining": s.draining.Load(),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reg.Inc("jobs.rejected")
		writeError(w, http.StatusServiceUnavailable, "daemon is draining: not accepting new jobs")
		return
	}
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		s.reg.Inc("jobs.rejected")
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if spec.ID != "" {
		if existing, ok := s.jobs[spec.ID]; ok {
			s.mu.Unlock()
			// Idempotent re-submission: the client retry path. The stored
			// spec wins; a different payload under the same ID is the
			// client's bug, surfaced by comparing the echoed spec.
			s.reg.Inc("jobs.deduped")
			writeJSON(w, http.StatusOK, s.statusWithArtifacts(existing))
			return
		}
	}
	id := spec.ID
	for id == "" || s.jobs[id] != nil {
		id = telemetry.NewRunID()
	}
	dir := filepath.Join(s.opts.DataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("controlapi: %v", err))
		return
	}
	rec := telemetry.NewRecorder(0)
	rec.Exclude(telemetry.KindRetire) // like every batch CLI: counts stay complete
	reg := telemetry.NewRegistry()
	jctx, jcancel := context.WithCancel(s.baseCtx)
	j := &job{
		id: id, dir: dir, spec: spec,
		rec: rec, reg: reg,
		tracker: sched.NewTracker(reg, rec, s.opts.Log),
		ctx:     jctx, cancel: jcancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now().UTC(),
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()

	s.reg.Inc("jobs.submitted")
	if s.opts.Log != nil {
		s.opts.Log.Info("job submitted", "job", id, "kind", spec.Kind)
	}
	go s.execute(j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// execute owns one job's lifecycle from queue slot to terminal state.
func (s *Server) execute(j *job) {
	defer s.wg.Done()
	select {
	case s.sem <- struct{}{}:
	case <-j.ctx.Done():
		j.finish(StateCancelled, "cancelled while queued")
		s.reg.Inc("jobs.cancelled")
		close(j.done)
		return
	}
	defer func() { <-s.sem }()
	if !j.toRunning() {
		j.finish(StateCancelled, "cancelled while queued")
		s.reg.Inc("jobs.cancelled")
		close(j.done)
		return
	}
	err := s.runJob(j.ctx, j)
	switch {
	case err == nil:
		j.finish(StateDone, "")
		s.reg.Inc("jobs.done")
	case j.cancelled(), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCancelled, err.Error())
		s.reg.Inc("jobs.cancelled")
	default:
		j.finish(StateFailed, err.Error())
		s.reg.Inc("jobs.failed")
	}
	if s.opts.Log != nil {
		st := j.status()
		s.opts.Log.Info("job finished", "job", j.id, "state", string(st.State), "error", st.Error)
	}
	close(j.done)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, s.statusWithArtifacts(j))
}

// statusWithArtifacts decorates a status snapshot with the artifact
// listing once the job can no longer change it.
func (s *Server) statusWithArtifacts(j *job) JobStatus {
	st := j.status()
	if st.State.Terminal() {
		st.Artifacts, _ = s.listArtifacts(j)
	}
	return st
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	alreadyRequested, terminal := j.requestCancel()
	switch {
	case terminal:
		writeError(w, http.StatusConflict,
			fmt.Sprintf("job is already %s", j.status().State))
	case alreadyRequested:
		writeError(w, http.StatusConflict, "cancel already requested")
	default:
		if s.opts.Log != nil {
			s.opts.Log.Info("job cancel requested", "job", j.id)
		}
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	// The shared obs stream, bounded by the job's lifetime: when the job
	// reaches a terminal state the remaining ring drains and the stream
	// ends, so `client events --follow` terminates with the job.
	obs.ServeEventStream(w, r, j.rec, j.done)
}

func (s *Server) listArtifacts(j *job) ([]Artifact, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	out := make([]Artifact, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, Artifact{Name: e.Name(), Size: info.Size()})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out, nil
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	arts, err := s.listArtifacts(j)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": arts})
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	name := r.PathValue("name")
	// The artifact namespace is flat and the ID alphabet excludes path
	// separators; reject anything that could escape the job directory.
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		writeError(w, http.StatusBadRequest, "invalid artifact name")
		return
	}
	f, err := os.Open(filepath.Join(j.dir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such artifact")
		return
	}
	defer f.Close()
	ct := mime.TypeByExtension(filepath.Ext(name))
	if ct == "" {
		ct = "application/octet-stream"
	}
	w.Header().Set("Content-Type", ct)
	if info, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", fmt.Sprint(info.Size()))
	}
	_, _ = io.Copy(w, f)
}

// writeJSON / writeError are the wire helpers: every non-streaming
// response is a JSON document, errors as {"error": "..."}.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
