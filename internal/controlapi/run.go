package controlapi

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/spectre"
	"repro/internal/telemetry"
)

// Artifact file names every job writes (campaign kinds add their CSV
// series next to these).
const (
	artifactManifest = "manifest.json"
	artifactLog      = "job.log"
	artifactAttack   = "attack.json"
	artifactTrace    = "trace.json"
)

// campaignSection maps a campaign job kind onto the section selector.
func campaignSection(kind string) (experiments.CampaignSpec, bool) {
	switch kind {
	case "fig4":
		return experiments.CampaignSpec{Fig4: true}, true
	case "fig5":
		return experiments.CampaignSpec{Fig5: true}, true
	case "fig6":
		return experiments.CampaignSpec{Fig6: true}, true
	case "table1":
		return experiments.CampaignSpec{Table1: true}, true
	}
	return experiments.CampaignSpec{}, false
}

// config resolves the spec into the engine configuration, mirroring
// cmd/experiments' flag handling field for field — the byte-identity
// contract depends on an unset spec field and an unset CLI flag
// producing the same Config.
func (s JobSpec) config(defaultWorkers int, j *job, ctx context.Context) experiments.Config {
	cfg := experiments.DefaultConfig()
	if s.Samples > 0 {
		cfg.SamplesPerClass = s.Samples
	}
	if s.Attempts > 0 {
		cfg.Attempts = s.Attempts
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.Reps > 0 {
		cfg.Reps = s.Reps
	}
	cfg.Workers = s.Workers
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers
	}
	cfg.Telemetry = j.rec
	cfg.Metrics = j.reg
	cfg.Tracker = j.tracker
	cfg.BaseCtx = ctx
	return cfg
}

// runJob executes one job into its artifact directory. It returns the
// engine error verbatim (the caller classifies context cancellation as
// StateCancelled); whatever happens, the run manifest is flushed before
// returning — a drained or cancelled job still leaves a provenance
// record of what it did.
func (s *Server) runJob(ctx context.Context, j *job) error {
	start := time.Now()
	spec := j.spec

	logf, err := os.Create(filepath.Join(j.dir, artifactLog))
	if err != nil {
		return fmt.Errorf("controlapi: job %s: %w", j.id, err)
	}
	defer logf.Close()

	// Whatever the outcome, the job leaves a Perfetto-loadable trace of
	// the ring's retained events next to the manifest — the same
	// best-effort flight record the CLIs' -trace flag writes (ring-
	// capacity-bounded, so volatile by nature; the deterministic census
	// lives in the manifest's events block).
	defer func() {
		_ = telemetry.WriteChromeTraceFile(filepath.Join(j.dir, artifactTrace), j.rec.Events())
	}()

	var runErr error
	if section, ok := campaignSection(spec.Kind); ok {
		cfg := spec.config(s.opts.DefaultWorkers, j, ctx)
		// Tool and manifest flow mirror cmd/experiments exactly: the
		// daemon is a scheduler around the same engine, and the manifest
		// records the engine run, not the scheduler.
		m := cfg.Manifest("experiments", nil)
		m.RunID = s.opts.RunID
		runErr = experiments.RunCampaign(cfg, section, logf, j.dir)
		cfg.FinishManifest(m, start)
		if werr := m.WriteFile(filepath.Join(j.dir, artifactManifest)); werr != nil && runErr == nil {
			runErr = werr
		}
		return runErr
	}
	// "attack": Reps end-to-end injection-chain evaluations under the
	// named posture, fanned out like any experiment driver with per-rep
	// derived seeds — worker-invariant by the same rule.
	runErr = s.runAttackJob(ctx, j, spec, logf, start)
	return runErr
}

// attackSummary is the attack.json artifact: the deterministic
// aggregation of every repetition's outcome.
type attackSummary struct {
	Variant   string          `json:"variant"`
	Posture   string          `json:"posture"`
	Perturb   bool            `json:"perturb,omitempty"`
	Seed      int64           `json:"seed"`
	Reps      int             `json:"reps"`
	Successes int             `json:"successes"`
	Injected  int             `json:"injected"`
	Stages    map[string]int  `json:"stages"`
	First     defense.Outcome `json:"first_outcome"`
}

func (s *Server) runAttackJob(ctx context.Context, j *job, spec JobSpec, logf *os.File, start time.Time) error {
	variantName := spec.Variant
	if variantName == "" {
		variantName = spectre.V1BoundsCheck.String()
	}
	postureName := spec.Posture
	if postureName == "" {
		postureName = "dep"
	}
	// Validate already vetted the names; resolve them again defensively.
	variant, ok := spectre.VariantByName(variantName)
	if !ok {
		return fmt.Errorf("controlapi: unknown variant %q", variantName)
	}
	posture, ok := defense.PostureByName(postureName)
	if !ok {
		return fmt.Errorf("controlapi: unknown posture %q", postureName)
	}
	reps := spec.Reps
	if reps <= 0 {
		reps = 1
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = s.opts.DefaultWorkers
	}
	// The adaptive attacker of the matrix's strongest rows: both info
	// leaks available, so the posture's speculation defenses — not the
	// memory defenses the paper's §I already concedes — decide the cell.
	atk := defense.Attacker{
		Variant:    variant,
		Perturb:    spec.Perturb,
		LeakCanary: true,
		LeakLayout: true,
	}

	m := telemetry.NewManifest("crspectred", nil)
	m.RunID = s.opts.RunID
	m.Seed = seed
	m.Workers = sched.Workers(workers)
	m.Config = map[string]any{
		"kind":    "attack",
		"variant": variantName,
		"posture": postureName,
		"perturb": spec.Perturb,
		"reps":    reps,
	}

	tctx := telemetry.WithRegistry(telemetry.NewContext(ctx, j.rec), j.reg)
	tctx = sched.WithPool(tctx, j.tracker.Pool("attack"))
	outcomes, runErr := sched.Map(tctx, workers, reps,
		func(_ context.Context, i int) (defense.Outcome, error) {
			return defense.Evaluate(posture, atk, sched.DeriveSeed(seed, uint64(i)))
		})

	if runErr == nil {
		sum := attackSummary{
			Variant: variantName, Posture: postureName, Perturb: spec.Perturb,
			Seed: seed, Reps: reps, Stages: make(map[string]int, 4),
			First: outcomes[0],
		}
		for _, o := range outcomes {
			if o.Success {
				sum.Successes++
			}
			if o.Injected {
				sum.Injected++
			}
			sum.Stages[string(o.Stage)]++
		}
		fmt.Fprintf(logf, "attack %s vs %s: %d/%d recovered the secret (%d injected)\n",
			variantName, postureName, sum.Successes, reps, sum.Injected)
		b, err := json.MarshalIndent(sum, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(j.dir, artifactAttack), append(b, '\n'), 0o644)
		}
		if err != nil {
			runErr = fmt.Errorf("controlapi: job %s: %w", j.id, err)
		}
	}

	m.RecordProgress(j.tracker.ManifestProgress())
	m.Finish(start, j.reg, j.rec)
	if werr := m.WriteFile(filepath.Join(j.dir, artifactManifest)); werr != nil && runErr == nil {
		runErr = werr
	}
	return runErr
}
