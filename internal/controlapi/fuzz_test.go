package controlapi_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/controlapi"
)

// FuzzJobSpecDecode pins the submission endpoint's safety contract:
// DecodeJobSpec must never panic on arbitrary bytes, and anything it
// accepts must be a spec the daemon could actually run — Validate-clean
// and round-trippable. The server maps every decode error to a 400
// before any resource is committed, so "decodes ⇒ runnable" is the
// whole attack surface of a malicious submission body.
func FuzzJobSpecDecode(f *testing.F) {
	// Valid documents, one per kind plus the knob extremes.
	f.Add([]byte(`{"kind":"fig4"}`))
	f.Add([]byte(`{"kind":"fig5","samples":400,"attempts":10,"seed":1}`))
	f.Add([]byte(`{"kind":"fig6","workers":8}`))
	f.Add([]byte(`{"kind":"table1","reps":3}`))
	f.Add([]byte(`{"id":"job-00ff","kind":"attack","variant":"v2-cross-train","posture":"retpoline","perturb":true,"reps":100}`))
	// The rejection classes the validator distinguishes.
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"kind":"fig9"}`))
	f.Add([]byte(`{"kind":"attack","variant":"nope"}`))
	f.Add([]byte(`{"kind":"attack","posture":"nope"}`))
	f.Add([]byte(`{"kind":"fig4","samples":-3}`))
	f.Add([]byte(`{"kind":"fig4","workers":99999999}`))
	f.Add([]byte(`{"kind":"fig4","unknown_field":1}`))
	f.Add([]byte(`{"kind":"fig4"}{"kind":"fig4"}`))
	f.Add([]byte(`{"kind":"fig4","id":"../../etc"}`))
	f.Add([]byte(`{"kind":"fig4","seed":1e400}`))
	f.Add([]byte(`{"kind":"fig4","seed":"one"}`))
	f.Add([]byte(strings.Repeat(`{"kind":`, 1000)))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := controlapi.DecodeJobSpec(bytes.NewReader(data))
		if err != nil {
			// Rejected is always fine; the error must carry the package
			// prefix so handler 400s are attributable.
			if !strings.Contains(err.Error(), "controlapi:") {
				t.Errorf("error without package prefix: %v", err)
			}
			return
		}
		// Accepted: the spec must be independently valid...
		if verr := spec.Validate(); verr != nil {
			t.Errorf("decoded spec fails Validate: %v (input %q)", verr, data)
		}
		// ...and survive a JSON round trip unchanged — the dedupe path
		// re-serialises specs, so lossy decoding would break idempotency.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		spec2, err := controlapi.DecodeJobSpec(bytes.NewReader(enc))
		if err != nil {
			t.Errorf("round trip rejected: %v (wire %s)", err, enc)
		}
		if spec != spec2 {
			t.Errorf("round trip changed the spec: %+v vs %+v", spec, spec2)
		}
	})
}
