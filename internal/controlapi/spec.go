// Package controlapi is the crspectred daemon's control surface: an
// HTTP/JSON job API that accepts campaign jobs, queues them onto
// internal/sched worker pools under a per-daemon concurrency limit,
// streams per-job progress and telemetry events, and serves the
// finished artifacts (manifest JSON, CSV series) from a per-job
// artifact store.
//
// The execution contract is worker-invariance: a job runs through
// exactly the same engine code path as the equivalent CLI invocation
// (experiments.RunCampaign for the campaign kinds), so its results and
// manifest are byte-identical — after telemetry.Manifest.ZeroVolatile,
// the repo-wide convention — to a cmd/experiments run of the same
// configuration at any worker count. The daemon adds scheduling,
// observability and lifecycle around the engine; it never adds state
// the engine's numbers could depend on.
//
// Job lifecycle (see DESIGN.md §13 for the full state machine):
//
//	queued ──> running ──> done
//	   │           ├─────> failed
//	   └───────────┴─────> cancelled
package controlapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/defense"
	"repro/internal/spectre"
)

// JobSpec is the wire form of one campaign job. The zero value of every
// optional field selects the same default the equivalent CLI flag has,
// which is what keeps daemon and CLI runs byte-identical.
type JobSpec struct {
	// ID is the client-supplied job identifier, used for idempotent
	// submission: re-submitting a spec with an ID the daemon already
	// knows returns the existing job instead of spawning a second one
	// (the client's retry path relies on this). Empty means the daemon
	// assigns one. IDs become artifact directory names, so the alphabet
	// is restricted (see validID).
	ID string `json:"id,omitempty"`
	// Kind selects the workload: a campaign section ("fig4", "fig5",
	// "fig6", "table1") run through experiments.RunCampaign, or
	// "attack" — repetitions of the end-to-end injection chain under a
	// named defense posture (defense.Evaluate).
	Kind string `json:"kind"`
	// Seed drives every stochastic component (default 1, like the CLIs).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the job's sched fan-out (0 = the daemon default).
	// Any value produces byte-identical results; only wall-clock and the
	// manifest's informational workers field change.
	Workers int `json:"workers,omitempty"`
	// Samples is the per-class training-corpus size for campaign kinds
	// (0 = 400, the CLI default).
	Samples int `json:"samples,omitempty"`
	// Attempts is the attack-attempt count for campaign kinds (0 = 10).
	Attempts int `json:"attempts,omitempty"`
	// Reps is the repetition count: Table I cell averaging for
	// "table1", evaluation repetitions for "attack" (0 = the kind's
	// default: 3 and 1 respectively).
	Reps int `json:"reps,omitempty"`
	// Variant names the speculation primitive for "attack" jobs, from
	// spectre.VariantNames (default "v1-bounds-check").
	Variant string `json:"variant,omitempty"`
	// Posture names the defensive configuration for "attack" jobs, from
	// defense.PostureNames (default "dep").
	Posture string `json:"posture,omitempty"`
	// Perturb injects Algorithm 2's defense-aware perturbation routine
	// into "attack" runs.
	Perturb bool `json:"perturb,omitempty"`
}

// JobKinds lists the accepted Kind values.
func JobKinds() []string { return []string{"fig4", "fig5", "fig6", "table1", "attack"} }

// Submission caps: a decoded spec is about to command simulator time,
// so absurd values are a 400, not an OOM or a week-long job.
const (
	maxSpecBytes = 1 << 16
	maxSamples   = 100_000
	maxAttempts  = 10_000
	maxReps      = 100_000
	maxWorkers   = 4 << 10
	maxIDLen     = 64
)

// DecodeJobSpec strictly decodes and validates one job payload: unknown
// fields, trailing data, wrong types, out-of-range values, and unknown
// kind/variant/posture names are all errors. The server maps every
// error from here to a 400 — a spec that decodes is safe to run, which
// is the property FuzzJobSpecDecode pins (no panic, no resource
// commitment, on any byte soup).
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("controlapi: decode job spec: %w", err)
	}
	// A second document (or any non-space trailing bytes) is smuggling,
	// not a spec.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return JobSpec{}, errors.New("controlapi: decode job spec: trailing data after JSON document")
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// Validate checks every field against its domain. It never mutates the
// spec: defaults are applied at execution time so the stored spec
// reflects exactly what the client asked for.
func (s JobSpec) Validate() error {
	if s.ID != "" && !validID(s.ID) {
		return fmt.Errorf("controlapi: invalid job id %q: want 1-%d chars of [a-zA-Z0-9_-]", s.ID, maxIDLen)
	}
	kindOK := false
	for _, k := range JobKinds() {
		if s.Kind == k {
			kindOK = true
			break
		}
	}
	if !kindOK {
		return fmt.Errorf("controlapi: unknown job kind %q: want one of %s", s.Kind, strings.Join(JobKinds(), ", "))
	}
	switch {
	case s.Samples < 0 || s.Samples > maxSamples:
		return fmt.Errorf("controlapi: samples %d out of range [0, %d]", s.Samples, maxSamples)
	case s.Attempts < 0 || s.Attempts > maxAttempts:
		return fmt.Errorf("controlapi: attempts %d out of range [0, %d]", s.Attempts, maxAttempts)
	case s.Reps < 0 || s.Reps > maxReps:
		return fmt.Errorf("controlapi: reps %d out of range [0, %d]", s.Reps, maxReps)
	case s.Workers < 0 || s.Workers > maxWorkers:
		return fmt.Errorf("controlapi: workers %d out of range [0, %d]", s.Workers, maxWorkers)
	}
	if s.Variant != "" {
		if _, ok := spectre.VariantByName(s.Variant); !ok {
			return fmt.Errorf("controlapi: unknown variant %q: want one of %s",
				s.Variant, strings.Join(spectre.VariantNames(), ", "))
		}
	}
	if s.Posture != "" {
		if _, ok := defense.PostureByName(s.Posture); !ok {
			return fmt.Errorf("controlapi: unknown posture %q: want one of %s",
				s.Posture, strings.Join(defense.PostureNames(), ", "))
		}
	}
	return nil
}

// validID restricts job IDs to a filesystem- and URL-safe alphabet:
// they name artifact directories, so this is the path-traversal guard.
func validID(id string) bool {
	if len(id) == 0 || len(id) > maxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}
