package rop

import (
	"strings"
	"testing"

	"repro/internal/gadget"
	"repro/internal/isa"
	"repro/internal/vm"
)

// trivialWorkload prints "W" so tests can tell whether the host's benign
// work ran.
const trivialWorkload = `
workload_main:
	push r1
	movi r1, 'W'
	call rt_putchar
	pop r1
	ret
`

// attackBinary prints "PWNED" and exits — a stand-in for the Spectre
// payload in injection-mechanics tests.
const attackBinary = `
	movi r0, 1
	movi r1, 'P'
	syscall
	movi r1, 'W'
	syscall
	movi r1, 'N'
	syscall
	movi r1, 'E'
	syscall
	movi r1, 'D'
	syscall
	movi r0, 0
	movi r1, 0
	syscall
`

func newHostMachine(t *testing.T, opts HostOptions) *vm.Machine {
	t.Helper()
	m := vm.New(vm.DefaultConfig())
	host, err := isa.Assemble(HostSource(trivialWorkload, opts))
	if err != nil {
		t.Fatal(err)
	}
	m.Register("host", host, 0x100000)
	m.Register("attack", isa.MustAssemble(attackBinary), 0x400000)
	return m
}

func TestBenignInputRunsWorkload(t *testing.T) {
	m := newHostMachine(t, HostOptions{})
	if err := m.Exec("host", []byte("hello"), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Output.String(); got != "W" {
		t.Errorf("benign output = %q", got)
	}
	if len(m.ExecLog) != 0 {
		t.Errorf("benign run exec'd %v", m.ExecLog)
	}
}

func TestOverflowHijacksAndExecsAttack(t *testing.T) {
	m := newHostMachine(t, HostOptions{})
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	cat := gadget.ScanAndCatalog(img, 3)
	plan, err := PlanInjection(cat, "attack", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Exec("host", plan.Payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Output.String(); got != "PWNED" {
		t.Errorf("attack output = %q", got)
	}
	if len(m.ExecLog) != 1 || m.ExecLog[0] != "attack" {
		t.Errorf("exec log = %v", m.ExecLog)
	}
}

func TestInjectionLeavesRSBMisses(t *testing.T) {
	// The ROP chain's returns have no matching calls: the HID-visible
	// signature of the injection phase.
	m := newHostMachine(t, HostOptions{})
	img, _ := m.Load("host")
	plan, err := PlanInjection(gadget.ScanAndCatalog(img, 3), "attack", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Exec("host", plan.Payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.CPU.BP.Stats.ReturnMispred < 2 {
		t.Errorf("ROP run produced only %d return mispredictions", m.CPU.BP.Stats.ReturnMispred)
	}
}

func TestCanaryDetectsOverflow(t *testing.T) {
	m := newHostMachine(t, HostOptions{Canary: true})
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	// Randomise the canary like the loader would.
	canaryAddr := img.MustSymbol("__canary")
	if err := m.Mem.Write64(canaryAddr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanInjection(gadget.ScanAndCatalog(img, 3), "attack", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Exec("host", plan.Payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Aborted || m.ExitCode != vm.AbortStackSmash {
		t.Errorf("overflow not caught: aborted=%v code=%#x out=%q", m.Aborted, m.ExitCode, m.Output.String())
	}
}

func TestCanaryBenignStillWorks(t *testing.T) {
	m := newHostMachine(t, HostOptions{Canary: true})
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Write64(img.MustSymbol("__canary"), 0xABCD); err != nil {
		t.Fatal(err)
	}
	if err := m.Exec("host", []byte("ok"), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Aborted || m.Output.String() != "W" {
		t.Errorf("benign canary run: aborted=%v out=%q", m.Aborted, m.Output.String())
	}
}

func TestLeakedCanaryBypassesProtection(t *testing.T) {
	m := newHostMachine(t, HostOptions{Canary: true})
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	canary := uint64(0x0011223344556677)
	if err := m.Mem.Write64(img.MustSymbol("__canary"), canary); err != nil {
		t.Fatal(err)
	}
	// Attacker "leaked" the canary (info-leak primitive) and splices it.
	plan, err := PlanInjection(gadget.ScanAndCatalog(img, 3), "attack", &canary)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Exec("host", plan.Payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Aborted {
		t.Fatal("correct canary still aborted")
	}
	if m.Output.String() != "PWNED" {
		t.Errorf("output = %q", m.Output.String())
	}
}

func TestASLRBreaksStaleChain(t *testing.T) {
	// Plan against a non-ASLR load, then run against a slid machine:
	// the stale gadget addresses must not reach the attack binary.
	plain := newHostMachine(t, HostOptions{})
	img, _ := plain.Load("host")
	plan, err := PlanInjection(gadget.ScanAndCatalog(img, 3), "attack", nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := vm.DefaultConfig()
	cfg.ASLR = true
	cfg.ASLRSeed = 99
	slid := vm.New(cfg)
	host, _ := isa.Assemble(HostSource(trivialWorkload, HostOptions{}))
	slid.Register("host", host, 0x100000)
	slid.Register("attack", isa.MustAssemble(attackBinary), 0x400000)
	_ = slid.Exec("host", plan.Payload, 1_000_000) // fault or misbehave — both fine
	for _, e := range slid.ExecLog {
		if e == "attack" {
			t.Fatal("stale chain still exec'd the attack under ASLR")
		}
	}
}

func TestASLRAwareChainWorks(t *testing.T) {
	// Scanning the *slid* image (i.e. after an info leak reveals the
	// base) restores the attack — the paper's ASLR-bypass argument.
	cfg := vm.DefaultConfig()
	cfg.ASLR = true
	cfg.ASLRSeed = 42
	m := vm.New(cfg)
	host, _ := isa.Assemble(HostSource(trivialWorkload, HostOptions{}))
	m.Register("host", host, 0x100000)
	m.Register("attack", isa.MustAssemble(attackBinary), 0x400000)
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanInjection(gadget.ScanAndCatalog(img, 3), "attack", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Exec("host", plan.Payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Output.String() != "PWNED" {
		t.Errorf("output = %q", m.Output.String())
	}
}

func TestPayloadLayout(t *testing.T) {
	var ch gadget.Chain
	ch.AppendValue(0x4141414141414141)
	canary := uint64(0xBEEF)
	payload, lay := BuildPayload(&ch, "attack", &canary)
	if lay.NameOffset != 0 || lay.CanaryOffset != BufferOffset || lay.ChainOffset != BufferOffset+8 {
		t.Errorf("layout = %+v", lay)
	}
	if !strings.HasPrefix(string(payload), "attack\x00") {
		t.Error("payload does not start with name string")
	}
	if payload[len("attack")+1] != Filler {
		t.Error("filler byte missing after name")
	}
	if len(payload) != BufferOffset+8+8 {
		t.Errorf("payload length = %d", len(payload))
	}
	// No canary: chain immediately after filler.
	_, lay2 := BuildPayload(&ch, "attack", nil)
	if lay2.CanaryOffset != -1 || lay2.ChainOffset != BufferOffset {
		t.Errorf("no-canary layout = %+v", lay2)
	}
}

func TestPlanInjectionRejectsLongName(t *testing.T) {
	m := newHostMachine(t, HostOptions{})
	img, _ := m.Load("host")
	cat := gadget.ScanAndCatalog(img, 3)
	if _, err := PlanInjection(cat, strings.Repeat("x", 200), nil); err == nil {
		t.Error("oversized attack name accepted")
	}
}

func TestLeakViaDebugRecoversBaseAndCanary(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.ASLR = true
	cfg.ASLRSeed = 1234
	m := vm.New(cfg)
	host, err := isa.Assemble(HostSource(trivialWorkload, HostOptions{Canary: true}))
	if err != nil {
		t.Fatal(err)
	}
	m.Register("host", host, 0x100000)
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	canary := uint64(0x1337C0DECAFE)
	if err := m.Mem.Write64(img.MustSymbol("__canary"), canary); err != nil {
		t.Fatal(err)
	}
	leak, err := LeakViaDebug(m, "host", 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if leak.Base != img.Base {
		t.Errorf("leaked base %#x, actual %#x", leak.Base, img.Base)
	}
	if leak.Canary != canary {
		t.Errorf("leaked canary %#x, want %#x", leak.Canary, canary)
	}
	if m.Output.Len() != 0 {
		t.Error("leak left output in the buffer")
	}
}

func TestDebugPathAbsentForNormalInput(t *testing.T) {
	m := newHostMachine(t, HostOptions{})
	if err := m.Exec("host", []byte("normal input"), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Output.String(); got != "W" {
		t.Errorf("non-DBG input triggered diagnostics: %q", got)
	}
}

func TestDebugLeakParsesErrors(t *testing.T) {
	// A machine whose host lacks the debug path (arbitrary program)
	// yields a parse failure, not a panic.
	m := vm.New(vm.DefaultConfig())
	m.Register("host", isa.MustAssemble(`
		movi r0, 0
		movi r1, 0
		syscall
	`), 0x100000)
	if _, err := LeakViaDebug(m, "host", 100_000); err == nil {
		t.Error("leak parse succeeded on a host without the debug path")
	}
}
