// Package rop reproduces the paper's attack-injection mechanism (§II-C):
// a host application with a buffer-overflow-vulnerable input function, a
// runtime library whose function epilogues provide ROP gadgets, and a
// payload builder that overwrites the saved return address with a gadget
// chain issuing the EXEC syscall on the attacker's binary — the analogue
// of Listing 1's `"D"*0x6C + address-of-system + ... + address-of-attack`
// payload.
//
// One deliberate substitution: the paper's host reads a C string
// (strcpy), which cannot carry NUL bytes; real exploits work around this.
// Our vulnerable function is a length-prefixed copy (memcpy with an
// attacker-controlled length), which preserves the identical control-flow
// hijack while keeping payload bytes unconstrained. DESIGN.md records
// this.
package rop

import (
	"fmt"

	"repro/internal/gadget"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// BufferOffset is the distance in bytes from the vulnerable function's
// stack buffer to its saved return address (the paper uses 108 = 0x6C;
// ours is 112 to keep 8-byte alignment).
const BufferOffset = 112

// Filler is the byte used to pad the payload up to the return address
// (the paper's "D").
const Filler = 'D'

// RuntimeAsm is the host-side runtime ("libc") appended to every host
// program. Its syscall wrappers and callee-save epilogues are the gadget
// supply: rt_putchar restores r0 before returning ("pop r0; ret"),
// rt_memcpy restores r1 ("pop r1; ret"), rt_memset restores r2 and
// rt_strlen restores r3, and rt_syscall's tail is "syscall; ret".
const RuntimeAsm = `
; ---------------- runtime (gadget-bearing "libc") ----------------
rt_exit:                 ; exit(r1); does not return
	movi r0, 0
	syscall
	ret
rt_syscall:              ; raw syscall wrapper: caller sets r0..r3
	syscall
	ret
rt_putchar:              ; putchar(r1)
	push r0
	movi r0, 1
	syscall
	pop r0
	ret
rt_putint:               ; putint(r1): prints decimal + newline
	push r0
	movi r0, 2
	syscall
	pop r0
	ret
rt_memcpy:               ; memcpy(r2=dst, r3=src, r4=len); preserves r1
	push r1
rt_memcpy_loop:
	cmpi r4, 0
	je rt_memcpy_done
	loadb r1, [r3]
	storeb [r2], r1
	addi r2, r2, 1
	addi r3, r3, 1
	subi r4, r4, 1
	jmp rt_memcpy_loop
rt_memcpy_done:
	pop r1
	ret
rt_memset:               ; memset(r3=dst, r4=val, r5=len); preserves r2
	push r2
rt_memset_loop:
	cmpi r5, 0
	je rt_memset_done
	storeb [r3], r4
	addi r3, r3, 1
	subi r5, r5, 1
	jmp rt_memset_loop
rt_memset_done:
	pop r2
	ret
rt_strlen:               ; strlen(r1) -> r0; preserves r3
	push r3
	movi r0, 0
rt_strlen_loop:
	mov r3, r1
	add r3, r3, r0
	loadb r3, [r3]
	cmpi r3, 0
	je rt_strlen_done
	addi r0, r0, 1
	jmp rt_strlen_loop
rt_strlen_done:
	pop r3
	ret
`

// vulnPlainAsm is the paper's Algorithm-1 vulnerable function: copy the
// caller-supplied input (r1=src, r2=len) into a fixed 112-byte stack
// buffer with no bounds check.
const vulnPlainAsm = `
vulnerable_function:
	subi sp, sp, 112
	mov r3, sp
	mov r4, r1
	mov r5, r2
vf_copy:
	cmpi r5, 0
	je vf_done
	loadb r6, [r4]
	storeb [r3], r6
	addi r3, r3, 1
	addi r4, r4, 1
	subi r5, r5, 1
	jmp vf_copy
vf_done:
	addi sp, sp, 112
	ret
`

// vulnCanaryAsm is the same function hardened with a stack canary (paper
// §I, ref [12]): a secret word sits between the buffer and the return
// address and is checked before returning; a mismatch aborts.
const vulnCanaryAsm = `
vulnerable_function:
	movi r7, __canary
	load r7, [r7]
	push r7                  ; canary below the return address
	subi sp, sp, 112
	mov r3, sp
	mov r4, r1
	mov r5, r2
vf_copy:
	cmpi r5, 0
	je vf_done
	loadb r6, [r4]
	storeb [r3], r6
	addi r3, r3, 1
	addi r4, r4, 1
	subi r5, r5, 1
	jmp vf_copy
vf_done:
	addi sp, sp, 112
	pop r8
	movi r7, __canary
	load r7, [r7]
	cmp r7, r8
	jne vf_smash
	ret
vf_smash:
	movi r0, 4               ; SysAbort
	movi r1, 0x57ac          ; AbortStackSmash
	syscall
	halt
`

// canaryData declares the canary storage the loader randomises.
const canaryData = "\n__canary: .word 0\n"

// HostOptions configures host program generation.
type HostOptions struct {
	// Canary guards the vulnerable function with a stack canary.
	Canary bool
	// Secret, when non-empty, embeds the target secret in the host's
	// data section as the `__secret` symbol — the paper's threat model
	// ("the secret as an array that is stored in the host application;
	// the host never accesses the secret").
	Secret string
}

// HostSource builds a complete host program: entry point that feeds the
// program argument through the vulnerable function, then runs the
// workload (a `workload_main:` routine provided by the caller, e.g. a
// MiBench kernel), then exits. workloadAsm may declare its own data after
// a `.data` directive; the vulnerable function and runtime are inserted
// in the text section before it.
func HostSource(workloadAsm string, opts HostOptions) string {
	vuln := vulnPlainAsm
	extraData := ""
	if opts.Canary {
		vuln = vulnCanaryAsm
		extraData = canaryData
	}
	if opts.Secret != "" {
		extraData += fmt.Sprintf("\n.align 64\n__secret: .asciz %q\n", opts.Secret)
	}
	return `.entry _start
_start:
	call vulnerable_function
	; Verbose diagnostics path (the info-leak primitive the published
	; ASLR/canary bypasses rely on): inputs starting "DBG" echo two
	; stale stack words from the just-returned frame — the saved return
	; address (pinpointing the load base) and, on canary builds, the
	; canary value.
	cmpi r2, 3
	jb workload_entry
	loadb r3, [r1]
	cmpi r3, 'D'
	jne workload_entry
	loadb r3, [r1+1]
	cmpi r3, 'B'
	jne workload_entry
	loadb r3, [r1+2]
	cmpi r3, 'G'
	jne workload_entry
	load r3, [sp-8]          ; stale saved return address
	load r4, [sp-16]         ; stale canary slot (junk on plain builds)
	mov r1, r3
	call rt_putint
	mov r1, r4
	call rt_putint
workload_entry:              ; exec target "host#workload_entry" resumes here
	call workload_main
	movi r0, 0
	movi r1, 0
	syscall
	halt
` + vuln + RuntimeAsm + "\n" + workloadAsm + "\n.data\n" + extraData
}

// BuildExecChain constructs the gadget chain that performs
// EXEC(nameAddr): load SysExec into r0 and the binary-name pointer into
// r1 via pop gadgets, then enter a syscall gadget. It fails when the host
// image does not supply the needed gadgets.
func BuildExecChain(cat *gadget.Catalog, nameAddr uint64) (*gadget.Chain, error) {
	return cat.BuildSyscall(
		gadget.RegValue{Reg: 1, Value: nameAddr},
		gadget.RegValue{Reg: 0, Value: vm.SysExec},
	)
}

// ExecChainRegs lists the registers BuildExecChain loads, in chain
// order — the pop-gadget capabilities a static planner must find in a
// host image for the paper's injection to be possible.
func ExecChainRegs() []uint8 { return []uint8{1, 0} }

// PayloadLayout describes where BuildPayload placed its pieces, for
// documentation and tests.
type PayloadLayout struct {
	NameOffset   int // offset of the exec-name string (0)
	FillerLen    int // bytes of filler up to the canary/return address
	CanaryOffset int // -1 when no canary word is embedded
	ChainOffset  int // offset of the first chain word (the return address)
}

// BuildPayload serialises the overflow input: the attack binary's name
// (so it has a known address inside the argument area), filler up to the
// saved return address, an optional leaked canary word, then the chain.
// The returned layout locates each piece.
func BuildPayload(chain *gadget.Chain, execName string, canary *uint64) ([]byte, PayloadLayout) {
	lay := PayloadLayout{CanaryOffset: -1}
	payload := make([]byte, 0, BufferOffset+16+8*chain.Len())
	payload = append(payload, execName...)
	payload = append(payload, 0)
	for len(payload) < BufferOffset {
		payload = append(payload, Filler)
	}
	lay.FillerLen = BufferOffset - len(execName) - 1
	if canary != nil {
		lay.CanaryOffset = len(payload)
		var w [8]byte
		for i := 0; i < 8; i++ {
			w[i] = byte(*canary >> (8 * i))
		}
		payload = append(payload, w[:]...)
	}
	lay.ChainOffset = len(payload)
	payload = append(payload, chain.Bytes()...)
	return payload, lay
}

// NameAddr returns the in-memory address of the exec-name string inside
// a payload staged at the machine argument area.
func NameAddr() uint64 { return vm.ArgBase }

// Plan bundles everything an injection run needs: the payload plus its
// provenance, for logging and tests.
type Plan struct {
	Chain   *gadget.Chain
	Payload []byte
	Layout  PayloadLayout
}

// Emit records the plan on the telemetry stream: Val is the chain
// length in words, Addr the payload size in bytes.
func (p *Plan) Emit(rec *telemetry.Recorder) {
	if rec == nil {
		return
	}
	rec.Emit(telemetry.Event{
		Kind: telemetry.KindRopPlan,
		Addr: uint64(len(p.Payload)),
		Val:  uint64(len(p.Chain.Words())),
	})
}

// PlanInjection scans the loaded host image, builds the EXEC chain for
// the named attack binary and serialises the payload. canary, when
// non-nil, is the leaked stack canary to splice in.
func PlanInjection(cat *gadget.Catalog, attackName string, canary *uint64) (*Plan, error) {
	if len(attackName)+1 > BufferOffset {
		return nil, fmt.Errorf("rop: attack name %q too long for buffer", attackName)
	}
	chain, err := BuildExecChain(cat, NameAddr())
	if err != nil {
		return nil, err
	}
	payload, lay := BuildPayload(chain, attackName, canary)
	return &Plan{Chain: chain, Payload: payload, Layout: lay}, nil
}
