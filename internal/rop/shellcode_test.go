package rop

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func shellcodeMachine(t *testing.T, executable bool, canary bool) *vm.Machine {
	t.Helper()
	cfg := vm.DefaultConfig()
	cfg.StackExecutable = executable
	m := vm.New(cfg)
	host, err := isa.Assemble(HostSource(trivialWorkload, HostOptions{Canary: canary}))
	if err != nil {
		t.Fatal(err)
	}
	m.Register("host", host, 0x100000)
	m.Register("attack", isa.MustAssemble(attackBinary), 0x400000)
	return m
}

func TestShellcodeOnExecutableStack(t *testing.T) {
	m := shellcodeMachine(t, true, false)
	payload, lay, err := BuildShellcodePayload("attack", ShellcodeBufAddr(m.StackTop(), false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if lay.ChainOffset != BufferOffset {
		t.Errorf("layout = %+v", lay)
	}
	if err := m.Exec("host", payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Output.String() != "PWNED" {
		t.Errorf("output = %q", m.Output.String())
	}
}

func TestShellcodeBlockedByDEP(t *testing.T) {
	m := shellcodeMachine(t, false, false)
	payload, _, err := BuildShellcodePayload("attack", ShellcodeBufAddr(m.StackTop(), false), nil)
	if err != nil {
		t.Fatal(err)
	}
	runErr := m.Exec("host", payload, 1_000_000)
	if runErr == nil && m.Output.String() == "PWNED" {
		t.Fatal("shellcode executed despite DEP")
	}
}

func TestShellcodeWithLeakedCanary(t *testing.T) {
	m := shellcodeMachine(t, true, true)
	img, err := m.Load("host")
	if err != nil {
		t.Fatal(err)
	}
	canary := uint64(0xfeedface)
	if err := m.Mem.Write64(img.MustSymbol("__canary"), canary); err != nil {
		t.Fatal(err)
	}
	payload, lay, err := BuildShellcodePayload("attack", ShellcodeBufAddr(m.StackTop(), true), &canary)
	if err != nil {
		t.Fatal(err)
	}
	if lay.CanaryOffset != BufferOffset {
		t.Errorf("canary offset = %d", lay.CanaryOffset)
	}
	if err := m.Exec("host", payload, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Aborted {
		t.Fatal("correct canary still aborted")
	}
	if m.Output.String() != "PWNED" {
		t.Errorf("output = %q", m.Output.String())
	}
}

func TestShellcodeBufAddr(t *testing.T) {
	if got, want := ShellcodeBufAddr(0x1000, false), uint64(0x1000-8-BufferOffset); got != want {
		t.Errorf("plain = %#x, want %#x", got, want)
	}
	if got, want := ShellcodeBufAddr(0x1000, true), uint64(0x1000-16-BufferOffset); got != want {
		t.Errorf("canary = %#x, want %#x", got, want)
	}
}
