package rop

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// BuildShellcodePayload builds the classic pre-DEP exploit: machine code
// placed directly in the overflowed stack buffer, with the saved return
// address pointing back into the buffer. It only works when the platform
// maps the stack executable (vm.Config.StackExecutable); under DEP the
// first fetched instruction faults — which is exactly why the paper's
// attack reuses code already mapped executable instead.
//
// bufAddr is the runtime address of the vulnerable function's stack
// buffer (stackTop - 8 - BufferOffset for the plain host scaffold, one
// extra word lower with a canary). The shellcode EXECs execName, whose
// string bytes ride along in the payload's argument-area copy.
func BuildShellcodePayload(execName string, bufAddr uint64, canary *uint64) ([]byte, PayloadLayout, error) {
	lay := PayloadLayout{CanaryOffset: -1}
	nameOff := BufferOffset + 8 // past the buffer and the return address
	if canary != nil {
		nameOff += 8
	}
	nameAddr := uint64(vm.ArgBase) + uint64(nameOff)

	shellcode := []isa.Instruction{
		{Op: isa.MOVI, Rd: 0, Imm: vm.SysExec},
		{Op: isa.MOVI, Rd: 1, Imm: int64(nameAddr)},
		{Op: isa.SYSCALL},
		{Op: isa.HALT},
	}
	maxSlots := BufferOffset / isa.InstrSize
	if len(shellcode) > maxSlots {
		return nil, lay, fmt.Errorf("rop: shellcode of %d instructions exceeds buffer (%d slots)", len(shellcode), maxSlots)
	}
	payload := make([]byte, BufferOffset)
	for i, in := range shellcode {
		if err := in.Encode(payload[i*isa.InstrSize:]); err != nil {
			return nil, lay, err
		}
	}
	// Remaining slots stay zero, which decode as NOPs; irrelevant since
	// control enters at the buffer start.
	lay.FillerLen = BufferOffset - len(shellcode)*isa.InstrSize

	if canary != nil {
		lay.CanaryOffset = len(payload)
		payload = appendWord(payload, *canary)
	}
	lay.ChainOffset = len(payload)
	payload = appendWord(payload, bufAddr) // return into the shellcode
	payload = append(payload, execName...)
	payload = append(payload, 0)
	return payload, lay, nil
}

// ShellcodeBufAddr computes the vulnerable buffer's runtime address for
// the host scaffold given the machine's initial stack pointer.
func ShellcodeBufAddr(stackTop uint64, canary bool) uint64 {
	addr := stackTop - 8 - BufferOffset // _start's CALL pushed one word
	if canary {
		addr -= 8
	}
	return addr
}

func appendWord(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}
