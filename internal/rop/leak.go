package rop

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vm"
)

// DebugRetOffset is where the leaked stale return address points inside
// the host image: the instruction after `_start`'s call, i.e. base + one
// instruction slot. Attackers subtract it to recover the (possibly
// ASLR-slid) load base.
const DebugRetOffset = 16

// DebugLeak is what the host's verbose diagnostics path reveals.
type DebugLeak struct {
	// Base is the host image's recovered load base.
	Base uint64
	// Canary is the stale stack canary word (junk on non-canary builds).
	Canary uint64
}

// LeakViaDebug exercises the host's "DBG" diagnostics input and parses
// the two leaked stack words — the concrete info-leak primitive behind
// the paper's §I citations of ASLR and canary bypasses ([14]-[17]).
// The machine's output buffer is consumed and reset.
func LeakViaDebug(m *vm.Machine, hostName string, budget uint64) (DebugLeak, error) {
	m.Output.Reset()
	if err := m.Exec(hostName, []byte("DBG"), budget); err != nil {
		return DebugLeak{}, fmt.Errorf("rop: debug-leak run: %w", err)
	}
	lines := strings.Split(m.Output.String(), "\n")
	m.Output.Reset()
	if len(lines) < 2 {
		return DebugLeak{}, fmt.Errorf("rop: debug path produced no leak")
	}
	ret, err := strconv.ParseUint(strings.TrimSpace(lines[0]), 10, 64)
	if err != nil {
		return DebugLeak{}, fmt.Errorf("rop: parsing leaked return address: %w", err)
	}
	canary, err := strconv.ParseUint(strings.TrimSpace(lines[1]), 10, 64)
	if err != nil {
		return DebugLeak{}, fmt.Errorf("rop: parsing leaked canary: %w", err)
	}
	if ret < DebugRetOffset {
		return DebugLeak{}, fmt.Errorf("rop: implausible leaked return address %#x", ret)
	}
	return DebugLeak{Base: ret - DebugRetOffset, Canary: canary}, nil
}
