package telemetry

import (
	"math"
	"math/bits"
	"sync"
)

// NumHistBuckets is the fixed bucket count of every Histogram: bucket 0
// holds observations <= 1, bucket i (1..31) holds (2^(i-1), 2^i], and
// bucket 32 is the overflow (> 2^31, rendered as +Inf). The layout is
// compile-time fixed so snapshots from any two histograms merge
// bucket-for-bucket and serialised output never depends on which values
// happened to be observed.
const NumHistBuckets = 33

// HistOverflowLe is the sentinel upper bound of the overflow bucket
// (the Prometheus +Inf bucket) in snapshots.
const HistOverflowLe = math.MaxUint64

// Histogram is a fixed-bucket power-of-two histogram for non-negative
// integer observations (latencies in milliseconds, block sizes in
// instructions, task instruction counts). Buckets never reallocate and
// bucket boundaries never depend on the data, so two histograms fed the
// same multiset of observations — in any order, from any number of
// goroutines — produce byte-identical snapshots. A nil *Histogram is
// the disabled state: every method is a no-op, mirroring the
// registry/recorder contract.
type Histogram struct {
	mu       sync.Mutex
	name     string
	volatile bool
	counts   [NumHistBuckets]uint64
	sum      uint64
	total    uint64
}

// NewHistogram builds a standalone histogram. Volatile marks wall-clock
// derived data (task latencies): volatile histograms are served live by
// the obs endpoints but excluded from run manifests, whose every
// published number must be worker-count-invariant.
func NewHistogram(name string, volatile bool) *Histogram {
	return &Histogram{name: name, volatile: volatile}
}

// bucketOf maps a value to its fixed bucket index.
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(v - 1) // v in (2^(b-1), 2^b]
	if b >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN records the value n times (bulk merge of pre-counted data,
// e.g. per-size block-compile counts). Sum accumulation is exact, so
// totals stay commutative and worker-count-invariant.
func (h *Histogram) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.mu.Lock()
	h.counts[bucketOf(v)] += n
	h.sum += v * n
	h.total += n
	h.mu.Unlock()
}

// Merge folds a snapshot (typically from another shard's histogram of
// the same layout) into this histogram.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for _, b := range s.Buckets {
		h.counts[bucketOfLe(b.Le)] += b.N
	}
	h.sum += s.Sum
	h.total += s.Count
	h.mu.Unlock()
}

// bucketOfLe maps a snapshot bucket bound back to its index.
func bucketOfLe(le uint64) int {
	if le == HistOverflowLe {
		return NumHistBuckets - 1
	}
	return bucketOf(le)
}

// HistogramBucket is one non-empty bucket in a snapshot: N observations
// with value <= Le (and greater than the previous bucket's bound).
// Le == HistOverflowLe marks the overflow (+Inf) bucket.
type HistogramBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is the deterministic serialised form: buckets in
// ascending bound order, empty buckets omitted, JSON field order fixed
// by the struct. Two histograms fed the same observations encode
// byte-identically.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Volatile reports whether the histogram holds wall-clock-derived data
// (excluded from manifests).
func (h *Histogram) Volatile() bool {
	if h == nil {
		return false
	}
	return h.volatile
}

// Snapshot returns the deterministic snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Name: h.name, Count: h.total, Sum: h.sum}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		le := uint64(HistOverflowLe)
		if i < NumHistBuckets-1 {
			le = 1 << i
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, N: n})
	}
	return s
}
