package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExportersEmptyRing pins the degenerate case every exporter must
// survive: a recorder that never saw an event.
func TestExportersEmptyRing(t *testing.T) {
	rec := NewRecorder(16)
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, rec.Events()); err != nil {
		t.Fatalf("chrome trace over empty ring: %v", err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty ring produced %d trace events", len(doc.TraceEvents))
	}
	var jl bytes.Buffer
	if err := WriteJSONL(&jl, rec.Events()); err != nil {
		t.Fatalf("jsonl over empty ring: %v", err)
	}
	if jl.Len() != 0 {
		t.Errorf("empty ring produced jsonl output %q", jl.String())
	}
	back, err := ReadJSONL(&jl)
	if err != nil || len(back) != 0 {
		t.Errorf("reading empty jsonl: %v, %d events", err, len(back))
	}
	if evs, next := rec.EventsSince(0); len(evs) != 0 || next != 0 {
		t.Errorf("EventsSince on empty ring: %d events, cursor %d", len(evs), next)
	}
}

// TestExportersAllKindsExcluded pins the counts-only configuration: a
// mask excluding every kind keeps the census complete while the ring —
// and therefore every exporter and the /events stream — stays empty.
func TestExportersAllKindsExcluded(t *testing.T) {
	rec := NewRecorder(16)
	all := make([]Kind, NumKinds)
	for k := Kind(0); k < NumKinds; k++ {
		all[k] = k
	}
	rec.Exclude(all...)
	for k := Kind(0); k < NumKinds; k++ {
		rec.Emit(Event{Kind: k, Val: uint64(k)})
	}
	if rec.Len() != 0 || rec.Total() != 0 {
		t.Fatalf("excluded kinds stored: len=%d total=%d", rec.Len(), rec.Total())
	}
	if got := len(rec.Counts()); got != int(NumKinds) {
		t.Errorf("census incomplete under full mask: %d kinds", got)
	}
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if evs, next := rec.EventsSince(0); len(evs) != 0 || next != 0 {
		t.Errorf("EventsSince under full mask: %d events, cursor %d", len(evs), next)
	}
}

// TestEventsSinceCursorSemantics pins the tailing contract: a cursor
// sees each stored event exactly once, in order, across repeated calls.
func TestEventsSinceCursorSemantics(t *testing.T) {
	rec := NewRecorder(64)
	var cursor uint64
	var got []uint64
	for batch := 0; batch < 5; batch++ {
		for i := 0; i < 7; i++ {
			rec.Emit(Event{Kind: KindExec, Val: uint64(batch*7 + i)})
		}
		evs, next := rec.EventsSince(cursor)
		cursor = next
		for _, ev := range evs {
			got = append(got, ev.Val)
		}
	}
	if len(got) != 35 {
		t.Fatalf("saw %d events, want 35", len(got))
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("event %d out of order or duplicated: val %d", i, v)
		}
	}
	// Cursor at the end: nothing new.
	if evs, next := rec.EventsSince(cursor); len(evs) != 0 || next != cursor {
		t.Errorf("drained cursor returned %d events", len(evs))
	}
	// Cursor beyond the end (corrupt client): clamps, returns nothing.
	if evs, next := rec.EventsSince(cursor + 100); len(evs) != 0 || next != cursor {
		t.Errorf("future cursor returned %d events, cursor %d (want %d)", len(evs), next, cursor)
	}
}

// TestEventsSinceCatchesUpAfterWraparound is the SSE-stream edge case:
// a slow client whose cursor the ring has already overwritten must skip
// the lost events and resume at the oldest survivor, never blocking,
// duplicating, or fabricating entries.
func TestEventsSinceCatchesUpAfterWraparound(t *testing.T) {
	const capacity = 8
	rec := NewRecorder(capacity)
	rec.Emit(Event{Kind: KindExec, Val: 0})
	_, cursor := rec.EventsSince(0) // client read event 0, cursor = 1
	if cursor != 1 {
		t.Fatalf("cursor = %d, want 1", cursor)
	}
	// The ring wraps several times while the client sleeps.
	const total = 40
	for v := uint64(1); v < total; v++ {
		rec.Emit(Event{Kind: KindExec, Val: v})
	}
	evs, next := rec.EventsSince(cursor)
	if len(evs) != capacity {
		t.Fatalf("catch-up returned %d events, want the %d retained", len(evs), capacity)
	}
	for i, ev := range evs {
		want := uint64(total - capacity + i)
		if ev.Val != want || ev.Seq != want {
			t.Fatalf("catch-up event %d: val %d seq %d, want %d", i, ev.Val, ev.Seq, want)
		}
	}
	if next != total {
		t.Errorf("cursor after catch-up = %d, want %d", next, total)
	}
	// The stream is live again: the next event arrives without a gap.
	rec.Emit(Event{Kind: KindExec, Val: total})
	evs, next = rec.EventsSince(next)
	if len(evs) != 1 || evs[0].Val != total || next != total+1 {
		t.Errorf("post-catch-up read wrong: %d events, cursor %d", len(evs), next)
	}
}

func TestEventsSinceNilRecorder(t *testing.T) {
	var rec *Recorder
	if evs, next := rec.EventsSince(5); evs != nil || next != 5 {
		t.Error("nil recorder must return no events and an unchanged cursor")
	}
}

func TestMarshalJSONLMatchesWriteJSONL(t *testing.T) {
	ev := Event{Seq: 3, Kind: KindCovertProbe, Cycle: 99, PC: 0x40, Addr: 0x80, Val: 7, Level: 2}
	line, err := ev.MarshalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []Event{ev}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSuffix(buf.String(), "\n"); got != string(line) {
		t.Errorf("MarshalJSONL %q != WriteJSONL line %q", line, got)
	}
}

func TestKindByName(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("no_such_kind"); ok {
		t.Error("unknown name resolved")
	}
}
