//go:build !unix

package telemetry

// processCPUSeconds is unavailable on this platform. Manifest.Finish
// surfaces the gap as an explicit cpu_time_unsupported gauge instead of
// letting the zero masquerade as a measurement.
func processCPUSeconds() float64 { return 0 }

// cpuTimeSupported reports that CPU-time accounting is stubbed out here.
const cpuTimeSupported = false
