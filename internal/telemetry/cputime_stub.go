//go:build !unix

package telemetry

// processCPUSeconds is unavailable on this platform.
func processCPUSeconds() float64 { return 0 }
