package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry unifies the platform's scattered counters (branch-unit
// stats, cache stats, PMU deltas, scheduler pool stats) behind named
// counters and gauges with a deterministic snapshot API. Counters are
// monotonic uint64 accumulators; gauges are last-write-wins float64
// values. All methods are safe for concurrent use; Snapshot orders by
// name so serialised output is byte-stable.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]uint64{},
		gauges:   map[string]float64{},
	}
}

// Add increments the named counter by delta. A nil registry is a no-op
// (the disabled state, mirroring the recorder's contract).
func (r *Registry) Add(name string, delta uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set stores the named gauge value (last write wins).
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Metric is one named value in a snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Counter distinguishes monotonic counters from gauges.
	Counter bool `json:"counter,omitempty"`
}

// Snapshot returns every metric sorted by name. Counter values are
// widened to float64 (exact below 2^53, far beyond any simulated run).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, v := range r.counters {
		out = append(out, Metric{Name: name, Value: float64(v), Counter: true})
	}
	for name, v := range r.gauges {
		out = append(out, Metric{Name: name, Value: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Values returns the snapshot as a name->value map (the manifest's
// metrics block; encoding/json sorts map keys, keeping output stable).
func (r *Registry) Values() map[string]float64 {
	snap := r.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for _, m := range snap {
		out[m.Name] = m.Value
	}
	return out
}

// Write renders the snapshot as aligned "name value" lines (debug/CLI
// output).
func (r *Registry) Write(w io.Writer) error {
	for _, m := range r.Snapshot() {
		kind := "gauge"
		if m.Counter {
			kind = "counter"
		}
		if _, err := fmt.Fprintf(w, "%-40s %-8s %g\n", m.Name, kind, m.Value); err != nil {
			return err
		}
	}
	return nil
}
