package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry unifies the platform's scattered counters (branch-unit
// stats, cache stats, PMU deltas, scheduler pool stats) behind named
// counters and gauges with a deterministic snapshot API. Counters are
// monotonic uint64 accumulators; gauges are last-write-wins float64
// values. All methods are safe for concurrent use; Snapshot orders by
// name so serialised output is byte-stable.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]uint64{},
		gauges:   map[string]float64{},
		hists:    map[string]*Histogram{},
	}
}

// Add increments the named counter by delta. A nil registry is a no-op
// (the disabled state, mirroring the recorder's contract).
func (r *Registry) Add(name string, delta uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Set stores the named gauge value (last write wins).
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Histogram returns the named fixed-bucket histogram, creating it on
// first use. The volatile flag is fixed at creation (the first caller
// wins); see NewHistogram for its meaning. A nil registry returns a nil
// histogram, whose methods are all no-ops — the disabled path costs the
// callers one nil check, nothing else.
func (r *Registry) Histogram(name string, volatile bool) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name, volatile)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshots returns every registered histogram's snapshot
// sorted by name. With includeVolatile false, wall-clock-derived
// histograms (task latencies) are dropped — the manifest view, where
// every published number must be worker-count-invariant.
func (r *Registry) HistogramSnapshots(includeVolatile bool) []HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		if includeVolatile || !h.volatile {
			hists = append(hists, h)
		}
	}
	r.mu.Unlock()
	out := make([]HistogramSnapshot, 0, len(hists))
	for _, h := range hists {
		out = append(out, h.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Metric is one named value in a snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Counter distinguishes monotonic counters from gauges.
	Counter bool `json:"counter,omitempty"`
}

// Snapshot returns every metric sorted by name. Counter values are
// widened to float64 (exact below 2^53, far beyond any simulated run).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, v := range r.counters {
		out = append(out, Metric{Name: name, Value: float64(v), Counter: true})
	}
	for name, v := range r.gauges {
		out = append(out, Metric{Name: name, Value: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Values returns the snapshot as a name->value map (the manifest's
// metrics block; encoding/json sorts map keys, keeping output stable).
func (r *Registry) Values() map[string]float64 {
	snap := r.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for _, m := range snap {
		out[m.Name] = m.Value
	}
	return out
}

// Write renders the snapshot — counters, gauges, then histograms — as
// aligned "name kind value" lines (debug/CLI output).
func (r *Registry) Write(w io.Writer) error {
	for _, m := range r.Snapshot() {
		kind := "gauge"
		if m.Counter {
			kind = "counter"
		}
		if _, err := fmt.Fprintf(w, "%-40s %-8s %g\n", m.Name, kind, m.Value); err != nil {
			return err
		}
	}
	for _, h := range r.HistogramSnapshots(true) {
		if _, err := fmt.Fprintf(w, "%-40s %-8s count=%d sum=%d mean=%.1f\n",
			h.Name, "histogram", h.Count, h.Sum, h.Mean()); err != nil {
			return err
		}
	}
	return nil
}
