package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"io"
	"log/slog"
	"os"
	"time"
)

// NewRunID returns a fresh 16-hex-character run identifier. Run IDs key
// structured log records, the obs /buildz endpoint and manifests to one
// process invocation; they are host-side provenance, never simulated
// state, so entropy here cannot affect determinism.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: still unique enough to disambiguate local runs.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano())^uint64(os.Getpid())<<32)
	}
	return hex.EncodeToString(b[:])
}

// NewLogger builds the platform's structured logger: JSON records to w,
// every record stamped with the tool name and run ID so interleaved
// logs from concurrent campaigns stay attributable. The obs server and
// the scheduler watchdog log through this.
func NewLogger(w io.Writer, tool, runID string) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return slog.New(h).With("tool", tool, "run_id", runID)
}
