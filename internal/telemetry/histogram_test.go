package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 31, 31}, {1<<31 + 1, 32}, {1 << 62, 32}, {^uint64(0), 32},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramSnapshotDeterministicAcrossOrder(t *testing.T) {
	// The same multiset of observations, in two different orders and
	// interleavings, must encode byte-identically.
	vals := make([]uint64, 500)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = uint64(rng.Intn(100_000))
	}
	build := func(order []uint64, workers int) []byte {
		h := NewHistogram("t", false)
		var wg sync.WaitGroup
		per := len(order) / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(chunk []uint64) {
				defer wg.Done()
				for _, v := range chunk {
					h.Observe(v)
				}
			}(order[w*per : (w+1)*per])
		}
		wg.Wait()
		b, err := json.Marshal(h.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	fwd := append([]uint64(nil), vals...)
	rev := make([]uint64, len(vals))
	for i, v := range vals {
		rev[len(vals)-1-i] = v
	}
	if a, b := build(fwd, 1), build(rev, 4); !bytes.Equal(a, b) {
		t.Errorf("snapshots differ across observation order/parallelism:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("m", false), NewHistogram("m", false)
	whole := NewHistogram("m", false)
	for v := uint64(0); v < 300; v += 7 {
		if v%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	a.Merge(b.Snapshot())
	if !reflect.DeepEqual(a.Snapshot(), whole.Snapshot()) {
		t.Errorf("merged snapshot differs from whole:\n%+v\nvs\n%+v", a.Snapshot(), whole.Snapshot())
	}
}

func TestHistogramObserveNSumExact(t *testing.T) {
	h := NewHistogram("n", false)
	h.ObserveN(5, 10)
	h.ObserveN(32, 3)
	s := h.Snapshot()
	if s.Count != 13 || s.Sum != 5*10+32*3 {
		t.Errorf("count=%d sum=%d, want 13/146", s.Count, s.Sum)
	}
	if got := s.Mean(); got < 11.2 || got > 11.3 {
		t.Errorf("mean = %g", got)
	}
}

func TestNilHistogramIsSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveN(2, 3)
	h.Merge(HistogramSnapshot{Count: 1})
	if h.Name() != "" || h.Volatile() || h.Snapshot().Count != 0 {
		t.Error("nil histogram not inert")
	}
}

func TestRegistryHistogramGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("x", false)
	h2 := reg.Histogram("x", true) // flag fixed at creation: first wins
	if h1 != h2 {
		t.Fatal("Histogram did not return the existing instance")
	}
	if h1.Volatile() {
		t.Error("creation flag overridden by later call")
	}
	var nilReg *Registry
	if nilReg.Histogram("x", false) != nil {
		t.Error("nil registry must hand out nil histograms")
	}
	if nilReg.HistogramSnapshots(true) != nil {
		t.Error("nil registry snapshots not nil")
	}
}

func TestRegistryHistogramSnapshotsSortedAndFiltered(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("z.last", false).Observe(1)
	reg.Histogram("a.first", false).Observe(2)
	reg.Histogram("m.latency", true).Observe(3) // volatile: wall-clock
	all := reg.HistogramSnapshots(true)
	if len(all) != 3 || all[0].Name != "a.first" || all[2].Name != "z.last" {
		t.Fatalf("snapshots wrong or unsorted: %+v", all)
	}
	det := reg.HistogramSnapshots(false)
	if len(det) != 2 {
		t.Fatalf("volatile histogram leaked into deterministic view: %+v", det)
	}
	for _, s := range det {
		if s.Name == "m.latency" {
			t.Error("latency histogram in manifest view")
		}
	}
}

func TestManifestFinishRecordsKindsAndHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Inc("c.total")
	reg.Set("g.val", 2.5)
	reg.Histogram("blocks.size_instrs", false).ObserveN(8, 4)
	reg.Histogram("sched.pool.latency_ms", true).Observe(12)
	m := NewManifest("test", nil)
	m.Finish(time.Now(), reg, nil)
	if m.MetricKinds["c.total"] != "counter" || m.MetricKinds["g.val"] != "gauge" {
		t.Errorf("metric kinds wrong: %v", m.MetricKinds)
	}
	if len(m.Histograms) != 1 || m.Histograms[0].Name != "blocks.size_instrs" {
		t.Errorf("manifest histograms must hold exactly the deterministic set: %+v", m.Histograms)
	}
	if CPUTimeSupported() {
		if _, ok := m.Metrics["cpu_time_unsupported"]; ok {
			t.Error("cpu_time_unsupported gauge present on a supported platform")
		}
	} else if m.Metrics["cpu_time_unsupported"] != 1 {
		t.Error("cpu_time_unsupported gauge missing on a stub platform")
	}
}

func TestManifestProgressRoundTrip(t *testing.T) {
	m := NewManifest("test", nil)
	m.RecordProgress([]ProgressPool{{Name: "soak", Submitted: 10, Done: 9, Failed: 1, Instrs: 12345}})
	b, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Progress, m.Progress) {
		t.Errorf("progress did not round-trip: %+v vs %+v", back.Progress, m.Progress)
	}
}
