package telemetry

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRecorderRingSemantics(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{Kind: KindRetire, PC: uint64(i)})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantPC := uint64(i + 2) // oldest two overwritten
		if ev.PC != wantPC || ev.Seq != wantPC {
			t.Errorf("event %d = {PC:%d Seq:%d}, want PC=Seq=%d", i, ev.PC, ev.Seq, wantPC)
		}
	}
}

func TestRecorderCountsIndependentOfCapacity(t *testing.T) {
	small, big := NewRecorder(2), NewRecorder(1024)
	for i := 0; i < 100; i++ {
		k := KindRetire
		if i%10 == 0 {
			k = KindCacheFill
		}
		small.Emit(Event{Kind: k})
		big.Emit(Event{Kind: k})
	}
	if !reflect.DeepEqual(small.Counts(), big.Counts()) {
		t.Fatalf("counts differ by capacity: %v vs %v", small.Counts(), big.Counts())
	}
	want := map[string]uint64{"retire": 90, "cache_fill": 10}
	if got := small.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Counts = %v, want %v", got, want)
	}
}

func TestRecorderExcludeCountsButDoesNotStore(t *testing.T) {
	r := NewRecorder(8)
	r.Exclude(KindRetire)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindRetire})
	}
	r.Emit(Event{Kind: KindCacheFill})
	want := map[string]uint64{"retire": 5, "cache_fill": 1}
	if got := r.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Counts = %v, want %v — excluded kinds must still be counted", got, want)
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != KindCacheFill {
		t.Fatalf("ring = %v, want only the cache fill", evs)
	}
	if evs[0].Seq != 0 {
		t.Errorf("stored Seq = %d, want 0 — excluded kinds must not consume sequence numbers", evs[0].Seq)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0 — exclusion is not wrap-around loss", r.Dropped())
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := NewRecorder(64)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Event{Kind: KindTaskStart, Addr: uint64(g)})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Total(); got != goroutines*per {
		t.Fatalf("Total = %d, want %d", got, goroutines*per)
	}
	// Seq numbers in the retained window must be unique and ascending.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("non-ascending Seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestNilRecorderAndRegistryAreSafeSinks(t *testing.T) {
	var reg *Registry
	reg.Inc("x")
	reg.Add("x", 3)
	reg.Set("y", 1.5)
	if snap := reg.Snapshot(); snap != nil {
		t.Fatalf("nil registry Snapshot = %v, want nil", snap)
	}
	if vals := reg.Values(); vals != nil {
		t.Fatalf("nil registry Values = %v, want nil", vals)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Add("z.count", 2)
	reg.Inc("a.count")
	reg.Set("m.gauge", 3.25)
	snap := reg.Snapshot()
	want := []Metric{
		{Name: "a.count", Value: 1, Counter: true},
		{Name: "m.gauge", Value: 3.25},
		{Name: "z.count", Value: 2, Counter: true},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %+v, want %+v", snap, want)
	}
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Write produced no output")
	}
}

func TestContextCarriers(t *testing.T) {
	rec, reg := NewRecorder(8), NewRegistry()
	ctx := WithRegistry(NewContext(t.Context(), rec), reg)
	if FromContext(ctx) != rec {
		t.Fatal("FromContext lost the recorder")
	}
	if RegistryFrom(ctx) != reg {
		t.Fatal("RegistryFrom lost the registry")
	}
	if FromContext(t.Context()) != nil || RegistryFrom(t.Context()) != nil {
		t.Fatal("bare context should carry nil sinks")
	}
}

// chromeDoc mirrors the trace-event container for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		PID  int            `json:"pid"`
		TID  uint64         `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceNesting(t *testing.T) {
	events := []Event{
		{Kind: KindRetire, Cycle: 5},
		{Kind: KindSpecEnter, Cycle: 10, PC: 0x1000, Val: 260},
		{Kind: KindCacheFill, Cycle: 20, Addr: 0x8000, Level: 3, Val: 180},
		{Kind: KindCovertProbe, Cycle: 30, Addr: 0x8000, Val: 180},
		{Kind: KindSpecSquash, Cycle: 200, Val: 12},
		{Kind: KindTaskStart, Seq: 1, Addr: 7},
		{Kind: KindTaskStop, Seq: 2, Addr: 7},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Retire excluded: 6 of the 7 events survive.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6", len(doc.TraceEvents))
	}
	// The speculation episode must open before and close after its
	// nested fill/probe, all on pid 0 / tid 0.
	b, e := doc.TraceEvents[0], doc.TraceEvents[3]
	if b.Ph != "B" || b.Name != "speculation" || e.Ph != "E" {
		t.Fatalf("episode bracket = %+v / %+v", b, e)
	}
	fill := doc.TraceEvents[1]
	if fill.Ph != "X" || fill.Name != "fill.MEM" || fill.Dur != 180 {
		t.Fatalf("fill slice = %+v", fill)
	}
	if !(b.TS <= fill.TS && fill.TS <= e.TS) {
		t.Fatalf("fill at ts %d not inside episode [%d,%d]", fill.TS, b.TS, e.TS)
	}
	if b.PID != 0 || fill.PID != 0 {
		t.Fatal("core events must share pid 0")
	}
	task := doc.TraceEvents[4]
	if task.PID != 1 || task.TID != 7 || task.Ph != "B" {
		t.Fatalf("task event = %+v", task)
	}
}

func TestWriteChromeTraceDropsOrphanSquash(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []Event{
		{Kind: KindSpecSquash, Cycle: 9}, // opener lost to ring wrap
		{Kind: KindSpecEnter, Cycle: 10},
		{Kind: KindSpecSquash, Cycle: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2 (orphan squash dropped)", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "B" || doc.TraceEvents[1].Ph != "E" {
		t.Fatalf("unbalanced B/E: %+v", doc.TraceEvents)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Kind: KindRetire, Seq: 0, Cycle: 1, PC: 0x40, Val: 7},
		{Kind: KindCacheFill, Seq: 1, Cycle: 9, Addr: 0xbeef, Val: 180, Level: 3},
		{Kind: KindRetPivot, Seq: 2, Cycle: 44, PC: 0x50, Addr: 0x99, Val: 0x60},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestManifestRoundTripAndZeroVolatile(t *testing.T) {
	reg := NewRegistry()
	reg.Add("cpu.retired", 123)
	rec := NewRecorder(8)
	rec.Emit(Event{Kind: KindSpecEnter})
	rec.Emit(Event{Kind: KindSpecSquash})

	m := NewManifest("testtool", []string{"-seed", "1"})
	m.Seed = 1
	m.Workers = 4
	m.Config = map[string]any{"samples": 40}
	m.Finish(time.Now().Add(-time.Millisecond), reg, rec)

	if m.Schema != ManifestSchema || m.Build.GoVersion == "" {
		t.Fatalf("missing provenance: %+v", m)
	}
	if m.WallSec <= 0 {
		t.Fatalf("WallSec = %v, want > 0", m.WallSec)
	}
	if m.Events["spec_enter"] != 1 || m.Events["spec_squash"] != 1 {
		t.Fatalf("Events = %v", m.Events)
	}
	if m.Metrics["cpu.retired"] != 123 {
		t.Fatalf("Metrics = %v", m.Metrics)
	}

	path := filepath.Join(t.TempDir(), "sub", "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	// Compare serialised forms: JSON decoding widens Config ints to
	// float64, so struct-level DeepEqual would spuriously differ.
	wantJSON, _ := m.MarshalIndent()
	gotJSON, _ := got.MarshalIndent()
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("file round trip mismatch:\n in=%s\nout=%s", wantJSON, gotJSON)
	}

	// Two manifests from "different hosts/runs" converge after
	// ZeroVolatile when their deterministic content matches.
	other := NewManifest("testtool", []string{"-seed", "1", "-workers", "9"})
	other.Seed, other.Workers, other.Config = 1, 4, map[string]any{"samples": 40}
	other.Host.Hostname = "elsewhere"
	other.Finish(time.Now().Add(-5*time.Millisecond), reg, rec)
	m.ZeroVolatile()
	other.ZeroVolatile()
	a, _ := m.MarshalIndent()
	b, _ := other.MarshalIndent()
	if !bytes.Equal(a, b) {
		t.Fatalf("ZeroVolatile manifests differ:\n%s\n---\n%s", a, b)
	}
}
