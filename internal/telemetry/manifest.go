package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"
)

// ManifestSchema versions the manifest layout; bump on incompatible
// field changes so downstream tooling can dispatch.
const ManifestSchema = "crspectre/manifest/v1"

// BuildInfo is the subset of runtime/debug.BuildInfo a manifest records.
type BuildInfo struct {
	GoVersion string `json:"go_version,omitempty"`
	Path      string `json:"path,omitempty"`
	VCS       string `json:"vcs,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// HostInfo records where a run executed.
type HostInfo struct {
	OS       string `json:"os,omitempty"`
	Arch     string `json:"arch,omitempty"`
	NumCPU   int    `json:"num_cpu,omitempty"`
	Hostname string `json:"hostname,omitempty"`
}

// Manifest is the per-run provenance record every CLI writes next to
// its results: what ran, with which configuration and seeds, on what
// build and host, how long it took, and what the metrics registry and
// event recorder accumulated. All maps serialise with sorted keys
// (encoding/json), so two runs with identical non-volatile content
// produce byte-identical files after ZeroVolatile.
type Manifest struct {
	Schema  string             `json:"schema"`
	Tool    string             `json:"tool"`
	RunID   string             `json:"run_id,omitempty"`
	Args    []string           `json:"args,omitempty"`
	Config  map[string]any     `json:"config,omitempty"`
	Seed    int64              `json:"seed,omitempty"`
	Workers int                `json:"workers,omitempty"`
	Start   string             `json:"start,omitempty"` // RFC 3339 UTC
	WallSec float64            `json:"wall_seconds,omitempty"`
	CPUSec  float64            `json:"cpu_seconds,omitempty"`
	Build   BuildInfo          `json:"build,omitempty"`
	Host    HostInfo           `json:"host,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// MetricKinds distinguishes each Metrics entry as "counter" or
	// "gauge" (schema note: additive in-place extension of v1; absent in
	// manifests written before the obs subsystem). Histograms are not
	// flattened into Metrics — they land structured in Histograms.
	MetricKinds map[string]string `json:"metric_kinds,omitempty"`
	// Histograms holds the registry's deterministic fixed-bucket
	// histograms (block-compile sizes, task instruction counts).
	// Volatile histograms — wall-clock task latencies — are excluded:
	// every number recorded here is worker-count-invariant, like every
	// other published metric. Sorted by name.
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	// Progress is the final campaign-progress snapshot, one entry per
	// scheduler pool, sorted by pool name. Only the invariant lifecycle
	// totals are recorded (submitted/done/failed/instrs); rates, ETAs
	// and latency distributions are live-only obs surface.
	Progress []ProgressPool `json:"progress,omitempty"`
	// Events holds the recorder's monotonic per-kind totals — capacity-
	// and scheduling-independent, so deterministic across worker counts.
	Events map[string]uint64 `json:"events,omitempty"`
}

// ProgressPool is the manifest-recorded (worker-count-invariant) subset
// of one scheduler pool's progress. Defined here rather than in
// internal/sched so the manifest does not import the scheduler.
type ProgressPool struct {
	Name      string `json:"name"`
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed,omitempty"`
	// Instrs is the total simulated instructions the pool's tasks
	// reported retiring (sched.ObserveInstrs).
	Instrs uint64 `json:"instrs,omitempty"`
}

// CPUTimeSupported reports whether processCPUSeconds returns a real
// measurement on this platform (false on the non-unix stub, where
// manifests carry an explicit cpu_time_unsupported gauge instead of a
// misleading zero).
func CPUTimeSupported() bool { return cpuTimeSupported }

// NewManifest starts a manifest for the named tool, stamping build and
// host provenance. Callers fill Config/Seed/Workers and call Finish
// before writing.
func NewManifest(tool string, args []string) *Manifest {
	m := &Manifest{
		Schema: ManifestSchema,
		Tool:   tool,
		Args:   args,
		Start:  time.Now().UTC().Format(time.RFC3339),
		Host: HostInfo{
			OS:     runtime.GOOS,
			Arch:   runtime.GOARCH,
			NumCPU: runtime.NumCPU(),
		},
	}
	if hn, err := os.Hostname(); err == nil {
		m.Host.Hostname = hn
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Build.GoVersion = bi.GoVersion
		m.Build.Path = bi.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs":
				m.Build.VCS = s.Value
			case "vcs.revision":
				m.Build.Revision = s.Value
			case "vcs.modified":
				m.Build.Modified = s.Value == "true"
			}
		}
	}
	return m
}

// Finish stamps timings and drains the telemetry sinks (either may be
// nil) into the manifest. start is the moment the run began. On
// platforms without CPU-time accounting the misleading zero CPUSec is
// accompanied by an explicit cpu_time_unsupported gauge.
func (m *Manifest) Finish(start time.Time, reg *Registry, rec *Recorder) {
	m.WallSec = time.Since(start).Seconds()
	m.CPUSec = processCPUSeconds()
	if !cpuTimeSupported {
		reg.Set("cpu_time_unsupported", 1)
	}
	if reg != nil {
		snap := reg.Snapshot()
		m.Metrics = make(map[string]float64, len(snap))
		m.MetricKinds = make(map[string]string, len(snap))
		for _, mt := range snap {
			m.Metrics[mt.Name] = mt.Value
			kind := "gauge"
			if mt.Counter {
				kind = "counter"
			}
			m.MetricKinds[mt.Name] = kind
		}
		m.Histograms = reg.HistogramSnapshots(false)
	}
	if rec != nil {
		m.Events = rec.Counts()
	}
}

// RecordProgress stores the final campaign-progress snapshot (the
// invariant subset; see ProgressPool). Callers hand in what
// sched.Tracker.ManifestProgress returns.
func (m *Manifest) RecordProgress(pools []ProgressPool) {
	m.Progress = pools
}

// ZeroVolatile clears every field that legitimately differs between two
// runs of the same configuration — timings, host identity, build
// stamp, and argv — leaving only content that must be deterministic.
// The determinism suite compares manifests after this pass.
func (m *Manifest) ZeroVolatile() {
	m.RunID = ""
	m.Args = nil
	m.Start = ""
	m.WallSec = 0
	m.CPUSec = 0
	m.Build = BuildInfo{}
	m.Host = HostInfo{}
}

// MarshalIndent renders the manifest as stable, human-readable JSON.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("telemetry: manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path, creating parent directories.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("telemetry: manifest %s: %w", path, err)
	}
	return &m, nil
}
