package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and about://tracing load). ts/dur are in the format's
// microsecond unit; we map one simulated cycle to one microsecond.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func hexArg(v uint64) string { return fmt.Sprintf("%#x", v) }

// WriteChromeTrace exports events as Chrome trace-event JSON.
//
// Track layout: pid 0 / tid 0 carries the core's timeline — speculation
// episodes as B/E duration slices with the cache fills, flushes, probes
// and mispredicts that occur inside them nested by timestamp; pid 1
// carries one tid per scheduler task (B/E per pool task). Retirement
// events are omitted (one slice per instruction would drown the
// timeline; use WriteJSONL for the full stream). Squash events whose
// opening SpecEnter was already overwritten in the ring are dropped so
// the B/E stack stays balanced.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events))
	depth := 0
	for _, ev := range events {
		switch ev.Kind {
		case KindRetire:
			// Omitted: see doc comment.
		case KindSpecEnter:
			depth++
			out = append(out, chromeEvent{
				Name: "speculation", Cat: "spec", Ph: "B", TS: ev.Cycle,
				Args: map[string]any{"pc": hexArg(ev.PC), "deadline": ev.Val},
			})
		case KindSpecSquash:
			if depth == 0 {
				continue
			}
			depth--
			out = append(out, chromeEvent{
				Name: "speculation", Cat: "spec", Ph: "E", TS: ev.Cycle,
				Args: map[string]any{"squashed": ev.Val},
			})
		case KindCacheFill:
			name := "fill.L2"
			if ev.Level >= 3 {
				name = "fill.MEM"
			}
			out = append(out, chromeEvent{
				Name: name, Cat: "cache", Ph: "X", TS: ev.Cycle, Dur: ev.Val,
				Args: map[string]any{"addr": hexArg(ev.Addr)},
			})
		case KindCacheEvict, KindCacheFlush, KindBranchMispredict,
			KindRetPivot, KindStackSmash, KindCovertProbe, KindExec, KindRopPlan,
			KindSchedStall:
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Cat: "event", Ph: "i", TS: ev.Cycle, S: "t",
				Args: map[string]any{
					"pc": hexArg(ev.PC), "addr": hexArg(ev.Addr), "val": ev.Val,
				},
			})
		case KindTaskStart:
			out = append(out, chromeEvent{
				Name: "task", Cat: "sched", Ph: "B", TS: ev.Seq, PID: 1, TID: ev.Addr,
			})
		case KindTaskStop:
			out = append(out, chromeEvent{
				Name: "task", Cat: "sched", Ph: "E", TS: ev.Seq, PID: 1, TID: ev.Addr,
			})
		}
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// jsonlEvent is the compact JSONL wire form of one event.
type jsonlEvent struct {
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Cycle uint64 `json:"cycle"`
	PC    uint64 `json:"pc,omitempty"`
	Addr  uint64 `json:"addr,omitempty"`
	Val   uint64 `json:"val,omitempty"`
	Level uint8  `json:"level,omitempty"`
}

// WriteJSONL exports every event (retirements included) as one JSON
// object per line — the machine-readable event log.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev.jsonl()); err != nil {
			return err
		}
	}
	return nil
}

// jsonl converts an event to its wire form.
func (ev Event) jsonl() jsonlEvent {
	return jsonlEvent{
		Seq: ev.Seq, Kind: ev.Kind.String(), Cycle: ev.Cycle,
		PC: ev.PC, Addr: ev.Addr, Val: ev.Val, Level: ev.Level,
	}
}

// MarshalJSONL renders one event as its JSONL wire form, without the
// trailing newline — the building block the obs /events stream shares
// with WriteJSONL.
func (ev Event) MarshalJSONL() ([]byte, error) {
	return json.Marshal(ev.jsonl())
}

// exportFile creates path (making parent directories) and streams the
// given exporter into it — the shared tail of every CLI's -trace /
// -trace-events flag.
func exportFile(path string, export func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChromeTraceFile writes a Chrome trace to path (parents created).
func WriteChromeTraceFile(path string, events []Event) error {
	return exportFile(path, func(w io.Writer) error { return WriteChromeTrace(w, events) })
}

// WriteJSONLFile writes a JSONL event log to path (parents created).
func WriteJSONLFile(path string, events []Event) error {
	return exportFile(path, func(w io.Writer) error { return WriteJSONL(w, events) })
}

// ReadJSONL parses a log written by WriteJSONL back into events
// (round-trip aid for tests and offline tooling).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var je jsonlEvent
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl: %w", err)
		}
		k, ok := KindByName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("telemetry: jsonl: unknown kind %q", je.Kind)
		}
		out = append(out, Event{
			Seq: je.Seq, Kind: k, Cycle: je.Cycle,
			PC: je.PC, Addr: je.Addr, Val: je.Val, Level: je.Level,
		})
	}
	return out, nil
}
