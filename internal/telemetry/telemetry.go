// Package telemetry is the observability spine of the simulated
// platform: a fixed-capacity ring-buffer recorder for typed
// micro-architectural events, a metrics registry unifying the scattered
// per-subsystem counters behind named values, exporters (Chrome
// trace-event JSON for Perfetto, compact JSONL), and per-run manifests.
//
// The recorder is designed around a zero-overhead-when-off contract:
// every hook point in the simulator guards its emission with a single
// nil check (`if tel != nil`), so a core running without telemetry pays
// one predictable branch per hook and nothing else — no locks, no
// allocation, no indirect calls. When enabled, Emit takes a mutex (the
// internal/sched pool emits from many goroutines) and writes one
// fixed-size Event into the ring, overwriting the oldest entry when
// full. Per-kind counts are monotonic and independent of ring capacity,
// so event totals are deterministic for any worker count even though
// ring *contents* interleave.
//
// Hooks observe; they never mutate simulated state. Cycle counts,
// cache contents, predictor state and PMU counters are byte-identical
// with and without a recorder attached (enforced by
// cpu.TestTelemetryTimingNeutral).
package telemetry

import (
	"context"
	"sync"
)

// Kind identifies one typed event class.
type Kind uint8

// The event taxonomy. Host-side events (task start/stop, rop plan) carry
// Cycle 0; simulated events are stamped with the emitting core's cycle.
const (
	// KindRetire is one retired (architectural) instruction; Val holds
	// the opcode.
	KindRetire Kind = iota
	// KindSpecEnter opens a wrong-path speculation episode at PC; Val is
	// the episode's deadline cycle.
	KindSpecEnter
	// KindSpecSquash closes a speculation episode; Val is the number of
	// wrong-path instructions squashed.
	KindSpecSquash
	// KindCacheFill is a demand fill (miss): Level is the level that
	// missed last (2 = filled from L2, 3 = filled from memory), Val the
	// access latency in cycles.
	KindCacheFill
	// KindCacheEvict is a line displaced by a fill or swept by co-tenant
	// interference; Level is the cache level.
	KindCacheEvict
	// KindCacheFlush is a CLFLUSH-style invalidation reaching a line.
	KindCacheFlush
	// KindBranchMispredict is a resolved conditional or indirect branch
	// that contradicted its prediction; Addr is the actual target.
	KindBranchMispredict
	// KindRetPivot is a RET whose popped return address contradicted the
	// RSB — the micro-architectural fingerprint of a ROP pivot. Addr is
	// the actual (popped) target, Val the stale prediction.
	KindRetPivot
	// KindStackSmash is a plain store overlapping the watched
	// saved-return-address slot (a buffer overflow reaching the frame),
	// or the canary abort syscall. Val is the value written.
	KindStackSmash
	// KindCovertProbe is a load touching the registered covert-channel
	// probe array — both the speculative transmit and the timed reload.
	// Val is the access latency.
	KindCovertProbe
	// KindExec is a SysExec pivot starting a registered binary.
	KindExec
	// KindTaskStart / KindTaskStop bracket one scheduler pool task;
	// Addr is the task index.
	KindTaskStart
	KindTaskStop
	// KindRopPlan records a built injection plan; Val is the chain
	// length in words, Addr the payload size in bytes.
	KindRopPlan
	// KindSchedStall is the stuck-worker watchdog firing: a pool task
	// exceeded its deadline. Addr is the task index, Val the seconds the
	// task has been running.
	KindSchedStall

	NumKinds // sentinel
)

var kindNames = [NumKinds]string{
	KindRetire:           "retire",
	KindSpecEnter:        "spec_enter",
	KindSpecSquash:       "spec_squash",
	KindCacheFill:        "cache_fill",
	KindCacheEvict:       "cache_evict",
	KindCacheFlush:       "cache_flush",
	KindBranchMispredict: "branch_mispredict",
	KindRetPivot:         "ret_pivot",
	KindStackSmash:       "stack_smash",
	KindCovertProbe:      "covert_probe",
	KindExec:             "exec",
	KindTaskStart:        "task_start",
	KindTaskStop:         "task_stop",
	KindRopPlan:          "rop_plan",
	KindSchedStall:       "sched_stall",
}

// KindByName resolves a wire name back to its Kind (the inverse of
// String; used by the obs event stream's kind filter and ReadJSONL).
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < NumKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return NumKinds, false
}

// String returns the kind's stable wire name (used by both exporters and
// the manifest event-count map).
func (k Kind) String() string {
	if k >= NumKinds {
		return "kind(?)"
	}
	return kindNames[k]
}

// Event is one recorded occurrence. The struct is fixed-size and
// value-typed so the ring never allocates per event.
type Event struct {
	Kind  Kind
	Level uint8  // cache level for cache events, else 0
	Seq   uint64 // recorder-assigned global sequence number
	Cycle uint64 // emitting core's cycle (0 for host-side events)
	PC    uint64 // program counter at emission, when meaningful
	Addr  uint64 // memory address / task index, per kind
	Val   uint64 // kind-specific payload (opcode, latency, count, ...)
}

// DefaultCapacity is the ring size NewRecorder uses for capacity <= 0.
const DefaultCapacity = 1 << 16

// Recorder is the fixed-capacity event ring. A nil *Recorder is the
// disabled state: every hook site guards with a nil check and skips all
// work. All methods are safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	buf    []Event
	head   int    // next write position
	n      int    // live entries (<= len(buf))
	seq    uint64 // events assigned a sequence number (stored kinds only)
	mask   uint64 // kinds counted but not stored (bit k = Kind k excluded)
	counts [NumKinds]uint64
}

// NewRecorder builds a recorder holding the last capacity events
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Exclude stops retaining the given kinds in the ring. Excluded kinds
// are still counted — Counts stays the complete, deterministic census —
// but no longer occupy ring capacity. The batch CLIs exclude
// retirements: at one event per instruction they would evict every
// episode-structure event within ~one ring of instructions.
func (r *Recorder) Exclude(kinds ...Kind) {
	r.mu.Lock()
	for _, k := range kinds {
		if k < NumKinds {
			r.mask |= 1 << k
		}
	}
	r.mu.Unlock()
}

// Emit appends one event, overwriting the oldest when the ring is full.
// The recorder assigns Seq; callers fill every other field.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	if ev.Kind < NumKinds {
		r.counts[ev.Kind]++
		if r.mask>>ev.Kind&1 == 1 {
			r.mu.Unlock()
			return
		}
	}
	ev.Seq = r.seq
	r.seq++
	r.buf[r.head] = ev
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// EventsSince returns the retained events whose sequence number is >=
// cursor, oldest first, plus the next cursor to resume from. It is the
// tailing primitive behind the obs server's /events stream: a client
// repeatedly calls EventsSince with the returned cursor and sees every
// stored event exactly once — unless the ring wraps past it, in which
// case the overwritten events are skipped and the stream catches up at
// the oldest retained entry (the gap is observable as a jump in Seq).
// A nil recorder returns no events and an unchanged cursor.
func (r *Recorder) EventsSince(cursor uint64) ([]Event, uint64) {
	if r == nil {
		return nil, cursor
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.seq
	if cursor >= next {
		return nil, next
	}
	oldest := r.seq - uint64(r.n)
	if cursor < oldest {
		cursor = oldest // wrapped past: catch up at the oldest survivor
	}
	count := int(next - cursor)
	start := r.head - r.n + int(cursor-oldest)
	if start < 0 {
		start += len(r.buf)
	}
	out := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out, next
}

// Len returns the number of retained events (<= capacity).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns the number of events ever stored in the ring
// (monotonic; exceeds Len once the ring wraps). Kinds hidden with
// Exclude appear only in Counts.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - uint64(r.n)
}

// Counts returns the monotonic per-kind emission totals keyed by kind
// name. Totals are independent of ring capacity and deterministic for
// any scheduling of concurrent emitters.
func (r *Recorder) Counts() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, NumKinds)
	for k, c := range r.counts {
		if c > 0 {
			out[Kind(k).String()] = c
		}
	}
	return out
}

// recorderKey / registryKey carry telemetry sinks through a context into
// code whose signatures predate telemetry (the sched pool).
type (
	recorderKey struct{}
	registryKey struct{}
)

// NewContext returns a context carrying the recorder, for APIs that
// accept a context instead of an explicit *Recorder (sched.Map).
func NewContext(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, r)
}

// FromContext extracts the recorder, or nil when none is attached.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// WithRegistry returns a context carrying the metrics registry.
func WithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, reg)
}

// RegistryFrom extracts the registry, or nil when none is attached.
func RegistryFrom(ctx context.Context) *Registry {
	reg, _ := ctx.Value(registryKey{}).(*Registry)
	return reg
}
