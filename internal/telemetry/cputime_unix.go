//go:build unix

package telemetry

import "syscall"

// processCPUSeconds returns user+system CPU time consumed by the
// process so far, or 0 when the platform can't report it.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}

// cpuTimeSupported reports that getrusage-backed CPU time is available.
const cpuTimeSupported = true
