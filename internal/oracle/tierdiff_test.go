package oracle_test

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/oracle"
	"repro/internal/progen"
)

// TestTierDiffRandomPrograms is the block tier's counterpart of
// TestLockstepRandomPrograms, under the harsher tier contract: the full
// PMU snapshot (Cycle and StallCycles included) must match the
// single-step interpreter at every slice boundary.
func TestTierDiffRandomPrograms(t *testing.T) {
	var halted, faulted, engaged int
	for seed := int64(1); seed <= 60; seed++ {
		p := progen.Generate(seed, progen.DefaultOptions())
		res, err := oracle.RunTierDiff(p, cpu.DefaultConfig(), testBudget, 0, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Clean() {
			t.Fatalf("seed %d tier divergence after %d steps:\n%v\nprogram:\n%s",
				seed, res.Steps, res.Div, p.Disasm(0))
		}
		switch {
		case res.Halted:
			halted++
		case res.Fault != nil:
			faulted++
		}
		if res.Blocks.Hits > 0 {
			engaged++
		}
	}
	t.Logf("60 seeds: %d halted, %d faulted, %d engaged the block tier", halted, faulted, engaged)
	if halted == 0 {
		t.Fatal("no generated program ran to completion; generator is broken")
	}
	if engaged < 50 {
		t.Fatalf("block tier engaged on only %d/60 programs; the diff is comparing the interpreter with itself", engaged)
	}
}

// TestTierDiffConfigSweep re-runs a seed band under every difftest
// posture. The block tier must be cycle-exact under all of them —
// speculation episodes, squashed cache effects, noise injection and
// privileged-flush faults included.
func TestTierDiffConfigSweep(t *testing.T) {
	configs := map[string]cpu.Config{
		"baseline":    cpu.DefaultConfig(),
		"no-spec":     {SpecWindow: 64, MispredictPenalty: 24},
		"invisispec":  {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, SquashCacheEffects: true},
		"fence-cond":  {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, FenceConditional: true},
		"tiny-window": {SpecWindow: 2, MispredictPenalty: 3, SpeculationEnabled: true},
		"gshare":      {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, Predictor: "gshare", NextLinePrefetch: true},
		"noisy":       {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, NoisePeriod: 50, NoiseSeed: 7},
		"priv-flush":  {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, PrivilegedFlush: true},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := int64(100); seed < 112; seed++ {
				p := progen.Generate(seed, progen.DefaultOptions())
				res, err := oracle.RunTierDiff(p, cfg, testBudget, 0, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Clean() {
					t.Fatalf("seed %d tier divergence after %d steps:\n%v\nprogram:\n%s",
						seed, res.Steps, res.Div, p.Disasm(0))
				}
			}
		})
	}
}

// TestTierDiffGadgets runs the Spectre-shaped gadget generators through
// the tier diff: these programs are built to trigger speculation
// episodes, store bypasses and BTB-injected wrong paths — exactly the
// machinery the block tier must hand over byte-for-byte.
func TestTierDiffGadgets(t *testing.T) {
	cfg := cpu.DefaultConfig()
	for _, kind := range []progen.GadgetKind{progen.GadgetLeak, progen.GadgetV2Inject, progen.GadgetSSB} {
		for seed := int64(1); seed <= 8; seed++ {
			p, meta := progen.GenerateGadget(seed, kind)
			res, err := oracle.RunTierDiff(p, cfg, testBudget, 0, nil)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			if !res.Clean() {
				t.Fatalf("%v seed %d (%+v) tier divergence after %d steps:\n%v\nprogram:\n%s",
					kind, seed, meta, res.Steps, res.Div, p.Disasm(0))
			}
		}
	}
}

// tierDiffLoop crafts an endless counting loop: it never halts (the
// tier-diff budget caps it), so the injection hooks below are guaranteed
// to fire on whichever slice they target, and r5 is never architecturally
// written, so an injected corruption survives to the slice compare.
func tierDiffLoop(t *testing.T) progen.Program {
	t.Helper()
	p, err := progen.Craft([]isa.Instruction{
		{Op: isa.MOVI, Rd: 1, Imm: 0},
		{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1},
		{Op: isa.JMP, Imm: int64(progen.CodeBase + isa.InstrSize)},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTierDiffDetectsInjectedCorruption proves the harness would catch a
// broken block tier: corrupting one side's register file between slices
// must surface as a divergence naming the register.
func TestTierDiffDetectsInjectedCorruption(t *testing.T) {
	p := tierDiffLoop(t) // budget-capped loop: every slice runs and r5 is never written
	res, err := oracle.RunTierDiff(p, cpu.DefaultConfig(), 4096, 0,
		func(slice uint64, blocks, single *cpu.CPU) {
			if slice == 2 {
				blocks.Regs[5] ^= 0xdead
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("injected register corruption was not detected")
	}
	if !strings.Contains(res.Div.String(), "r5") {
		t.Fatalf("divergence does not name the corrupted register:\n%v", res.Div)
	}
}

// TestTierDiffDetectsCycleSkew: the tier contract is harsher than the
// architectural one — even a pure timing skew (no architectural change)
// must be reported, because the golden figure CSVs difference cycle
// counts.
func TestTierDiffDetectsCycleSkew(t *testing.T) {
	p := tierDiffLoop(t)
	res, err := oracle.RunTierDiff(p, cpu.DefaultConfig(), 4096, 0,
		func(slice uint64, blocks, single *cpu.CPU) {
			if slice == 1 {
				blocks.Cycle += 7
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("injected cycle skew was not detected")
	}
	if !strings.Contains(res.Div.String(), "Cycles") {
		t.Fatalf("divergence does not name the cycle counter:\n%v", res.Div)
	}
}
