package oracle_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/progen"
)

const testBudget = 200_000

// TestLockstepRandomPrograms is the in-tree slice of the difftest soak:
// every generated program must either halt, exhaust its budget, or fault
// identically on both sides — never diverge.
func TestLockstepRandomPrograms(t *testing.T) {
	var halted, faulted, budget int
	for seed := int64(1); seed <= 60; seed++ {
		p := progen.Generate(seed, progen.DefaultOptions())
		res, err := oracle.RunProgram(p, cpu.DefaultConfig(), testBudget, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Clean() {
			t.Fatalf("seed %d diverged after %d steps:\n%v\nprogram:\n%s",
				seed, res.Steps, res.Div, p.Disasm(0))
		}
		switch {
		case res.Halted:
			halted++
		case res.Fault != nil:
			faulted++
		case res.BudgetExhausted:
			budget++
		}
	}
	t.Logf("60 seeds: %d halted, %d faulted, %d budget-capped", halted, faulted, budget)
	if halted == 0 {
		t.Fatal("no generated program ran to completion; generator is broken")
	}
}

// TestLockstepConfigSweep re-runs a band of seeds under every
// micro-architectural posture difftest exercises. None of these knobs may
// change architectural results, including post-squash state after
// wrong-path speculation (the speculation-consistency mode).
func TestLockstepConfigSweep(t *testing.T) {
	configs := map[string]cpu.Config{
		"baseline":    cpu.DefaultConfig(),
		"no-spec":     {SpecWindow: 64, MispredictPenalty: 24},
		"invisispec":  {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, SquashCacheEffects: true},
		"fence-cond":  {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, FenceConditional: true},
		"tiny-window": {SpecWindow: 2, MispredictPenalty: 3, SpeculationEnabled: true},
		"gshare":      {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, Predictor: "gshare", NextLinePrefetch: true},
		"noisy":       {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, NoisePeriod: 50, NoiseSeed: 7},
		"priv-flush":  {SpecWindow: 64, MispredictPenalty: 24, SpeculationEnabled: true, PrivilegedFlush: true},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := int64(100); seed < 112; seed++ {
				p := progen.Generate(seed, progen.DefaultOptions())
				res, err := oracle.RunProgram(p, cfg, testBudget, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Clean() {
					t.Fatalf("seed %d diverged after %d steps:\n%v\nprogram:\n%s",
						seed, res.Steps, res.Div, p.Disasm(0))
				}
			}
		})
	}
}

// TestIdenticalFaultIsClean: a program that divides by zero must fault on
// both sides with the same PC and cause, and that counts as agreement.
func TestIdenticalFaultIsClean(t *testing.T) {
	p, err := progen.Craft([]isa.Instruction{
		{Op: isa.MOVI, Rd: 1, Imm: 9},
		{Op: isa.DIVI, Rd: 0, Rs1: 1, Imm: 0},
		{Op: isa.HALT},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oracle.RunProgram(p, cpu.DefaultConfig(), testBudget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("identical faults reported as divergence:\n%v", res.Div)
	}
	if res.Fault == nil {
		t.Fatalf("expected an agreed fault, got %+v", res)
	}
}

// TestUnmappedFaultAgreement: both sides must agree on memory faults,
// including the faulting address of a page-straddling access.
func TestUnmappedFaultAgreement(t *testing.T) {
	p, err := progen.Craft([]isa.Instruction{
		{Op: isa.MOVI, Rd: 10, Imm: int64(progen.DataBase)},
		// Data region in Craft programs is one page; +4093 straddles into
		// the unmapped page after it.
		{Op: isa.LOAD, Rd: 0, Rs1: 10, Imm: 4093},
		{Op: isa.HALT},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oracle.RunProgram(p, cpu.DefaultConfig(), testBudget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("straddle fault divergence:\n%v", res.Div)
	}
	if res.Fault == nil {
		t.Fatal("expected a fault for a load straddling off the data region")
	}
}

// brokenFastPath simulates a memory fast-path bug on the optimized side:
// at the chosen step it silently clobbers a byte on the page the step's
// store is about to dirty, exactly as a mis-masked Write64 would.
func brokenFastPath(atStep uint64, addr uint64) oracle.PreStep {
	return func(step uint64, c *cpu.CPU, o *oracle.Machine) {
		if step == atStep {
			// LoadRaw bypasses permission checks and the OnWrite hook, so
			// the corruption is invisible until a comparison looks at the
			// page — like a real silent-corruption bug.
			_ = c.Mem.LoadRaw(addr, []byte{0xEE})
		}
	}
}

// TestBrokenFastPathCaughtAndMinimized is the acceptance gate: a seeded
// mutation that breaks a mem fast path must be caught by the lock-step
// comparison and minimized to a prefix of at most 16 instructions.
func TestBrokenFastPathCaughtAndMinimized(t *testing.T) {
	// A program with the interesting store early and plenty of padding
	// after, so minimization has something to cut.
	instrs := []isa.Instruction{
		{Op: isa.MOVI, Rd: 10, Imm: int64(progen.DataBase)}, // 0
		{Op: isa.MOVI, Rd: 1, Imm: 0x1122334455667788},      // 1
	}
	for i := 0; i < 8; i++ { // 2..9: padding before the store
		instrs = append(instrs, isa.Instruction{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 1})
	}
	const storeStep = 10
	instrs = append(instrs, isa.Instruction{Op: isa.STORE, Rs1: 10, Rs2: 1, Imm: 64}) // 10
	for i := 0; i < 40; i++ {                                                         // long tail the minimizer must discard
		instrs = append(instrs, isa.Instruction{Op: isa.XOR, Rd: 3, Rs1: 3, Rs2: 2})
	}
	instrs = append(instrs, isa.Instruction{Op: isa.HALT})
	p, err := progen.Craft(instrs, nil, false)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt a byte on the store's page but outside its written range,
	// as a mis-masked wide write would.
	pre := brokenFastPath(storeStep, progen.DataBase+80)
	cfg := cpu.DefaultConfig()
	res, err := oracle.RunProgram(p, cfg, testBudget, pre)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("injected fast-path corruption was not detected")
	}
	t.Logf("detected: %v", res.Div)

	min, n, mres, ok := oracle.Minimize(p, cfg, testBudget, pre)
	if !ok {
		t.Fatal("minimizer failed to reproduce the divergence")
	}
	if n > 16 {
		t.Fatalf("minimized prefix is %d instructions, want <= 16", n)
	}
	if mres.Clean() {
		t.Fatal("minimized program does not diverge")
	}
	t.Logf("minimized to %d instructions:\n%s", n, min.Disasm(n))
}

// TestLockstepDetectsRegisterDivergence: corrupting a register on one
// side must be caught at the next retire boundary.
func TestLockstepDetectsRegisterDivergence(t *testing.T) {
	p, err := progen.Craft([]isa.Instruction{
		{Op: isa.MOVI, Rd: 0, Imm: 1},
		{Op: isa.ADDI, Rd: 0, Rs1: 0, Imm: 1},
		{Op: isa.ADDI, Rd: 0, Rs1: 0, Imm: 1},
		{Op: isa.HALT},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	pre := func(step uint64, c *cpu.CPU, o *oracle.Machine) {
		if step == 2 {
			o.Regs[0] ^= 0x80 // oracle-side corruption: core is "wrong" too
		}
	}
	res, err := oracle.RunProgram(p, cpu.DefaultConfig(), testBudget, pre)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Fatal("register divergence not detected")
	}
	if res.Div.Step != 2 {
		t.Fatalf("divergence at step %d, want 2:\n%v", res.Div.Step, res.Div)
	}
}

// TestOracleStandalone exercises the reference machine on its own: the
// deliberately slow interpreter is itself a public API and must run a
// program to halt without the differential harness.
func TestOracleStandalone(t *testing.T) {
	p, err := progen.Craft([]isa.Instruction{
		{Op: isa.MOVI, Rd: 0, Imm: 5},
		{Op: isa.MOVI, Rd: 1, Imm: 7},
		{Op: isa.MUL, Rd: 2, Rs1: 0, Rs2: 1},
		{Op: isa.PUSH, Rs1: 2},
		{Op: isa.POP, Rd: 3},
		{Op: isa.HALT},
	}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMem()
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.New(m)
	o.PC = p.CodeBase
	o.Regs[isa.RegSP] = p.StackTop
	if err := o.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !o.Halted {
		t.Fatal("oracle did not halt")
	}
	if o.Regs[2] != 35 || o.Regs[3] != 35 {
		t.Fatalf("r2=%d r3=%d, want 35", o.Regs[2], o.Regs[3])
	}
	if o.Regs[isa.RegSP] != p.StackTop {
		t.Fatalf("sp=%#x, want %#x (balanced push/pop)", o.Regs[isa.RegSP], p.StackTop)
	}
	if o.Instret != 6 {
		t.Fatalf("instret=%d, want 6", o.Instret)
	}
}

// TestDefenseSwitchMidRunStaysLockstepped: flipping the defense knobs on
// a LIVE run (cpu.SetDefenses mirrored onto the oracle's
// PrivilegedFlush) must not open any architectural gap — including when
// the switch makes an in-flight program start faulting.
func TestDefenseSwitchMidRunStaysLockstepped(t *testing.T) {
	instrs := []isa.Instruction{
		{Op: isa.MOVI, Rd: 1, Imm: int64(progen.DataBase)},
		{Op: isa.CLFLUSH, Rs1: 1}, // legal under the lax posture
		{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 1},
		{Op: isa.CLFLUSH, Rs1: 1, Imm: 64}, // faults after the switch
		{Op: isa.HALT},
	}
	p, err := progen.Craft(instrs, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	pre := func(step uint64, c *cpu.CPU, o *oracle.Machine) {
		if step == 3 {
			c.SetDefenses(true, false, false, true)
			o.PrivilegedFlush = true
		}
	}
	res, err := oracle.RunProgram(p, cpu.DefaultConfig(), testBudget, pre)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("defense switch diverged:\n%v", res.Div)
	}
	if res.Fault == nil {
		t.Fatal("second CLFLUSH should fault once PrivilegedFlush is on")
	}
}

// TestZeroLenPeek guards the mem.check zero-length underflow fix at the
// oracle's comparison layer: PeekRaw/ReadBytes with n=0 on a fully
// mapped memory must not panic (it used to walk perms off the end).
func TestZeroLenPeek(t *testing.T) {
	m := mem.New(2 * mem.PageSize)
	if err := m.Protect(0, 2*mem.PageSize, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBytes(0, 0); err != nil {
		t.Fatalf("zero-length read: %v", err)
	}
}
