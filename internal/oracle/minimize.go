package oracle

import (
	"repro/internal/cpu"
	"repro/internal/progen"
)

// Minimize shrinks a diverging program to the shortest failing
// instruction prefix. It scans prefix lengths k = 1..NumInstr, running
// p.Truncate(k) (the first k instructions with the remainder replaced by
// HALT) under the same config, and returns the first prefix that still
// diverges together with its length and lock-step result.
//
// Linear scan from the front guarantees the returned prefix is minimal
// under the truncation family; divergences are rare, programs are a few
// hundred instructions, and the oracle retires millions of instructions
// per second, so the cost is negligible next to the soak itself.
//
// ok is false when no prefix reproduces the divergence (e.g. the failure
// was nondeterministic or induced by a PreStep hook keyed to state the
// truncation removed); callers should then report the full program.
func Minimize(p progen.Program, cfg cpu.Config, maxInstr uint64, pre PreStep) (min progen.Program, n int, res Result, ok bool) {
	for k := 1; k <= p.NumInstr; k++ {
		t := p.Truncate(k)
		r, err := RunProgram(t, cfg, maxInstr, pre)
		if err != nil {
			continue
		}
		if !r.Clean() {
			return t, k, r, true
		}
	}
	return p, p.NumInstr, Result{}, false
}

// MinimizeTier is Minimize for block-tier divergences: the same
// truncation scan, reproduced through RunTierDiff instead of the
// reference lock-step.
func MinimizeTier(p progen.Program, cfg cpu.Config, maxInstr, sliceInstr uint64, pre TierPreSlice) (min progen.Program, n int, res TierResult, ok bool) {
	for k := 1; k <= p.NumInstr; k++ {
		t := p.Truncate(k)
		r, err := RunTierDiff(t, cfg, maxInstr, sliceInstr, pre)
		if err != nil {
			continue
		}
		if !r.Clean() {
			return t, k, r, true
		}
	}
	return p, p.NumInstr, TierResult{}, false
}
