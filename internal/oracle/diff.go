package oracle

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/progen"
)

// PreStep, when non-nil, runs before each lock-step pair of Step calls.
// It exists for fault injection in the harness's own tests (e.g.
// simulating a broken memory fast path by corrupting one side), and for
// instrumentation; production difftest runs pass nil.
type PreStep func(step uint64, c *cpu.CPU, o *Machine)

// Divergence describes the first point at which the optimized core and
// the reference interpreter disagreed.
type Divergence struct {
	// Step is the retire index (0-based) of the diverging instruction.
	Step uint64
	// PC is the program counter both sides were about to execute.
	PC uint64
	// Reasons lists every mismatching architectural field.
	Reasons []string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("divergence at step %d pc=%#x:\n  %s",
		d.Step, d.PC, strings.Join(d.Reasons, "\n  "))
}

// Result reports one lock-step run.
type Result struct {
	// Steps is the number of instruction pairs retired.
	Steps uint64
	// Halted reports a clean HALT on both sides.
	Halted bool
	// BudgetExhausted reports that maxInstr was reached before HALT.
	BudgetExhausted bool
	// Fault, when non-nil, is the identical fault both sides raised (the
	// optimized core's error). An identical fault is a *passing* outcome:
	// the program was illegal and both implementations agreed on how.
	Fault error
	// Div is non-nil when the two sides disagreed; everything else
	// describes state at the moment of divergence.
	Div *Divergence
}

// Clean reports whether the run completed without divergence.
func (r Result) Clean() bool { return r.Div == nil }

// Lockstep runs the optimized core and the reference machine one retired
// instruction at a time, comparing the full architectural contract after
// every retire: PC, all 16 registers, the comparison flags, the halted
// bit, and the contents of every memory page either side dirtied during
// the step. At final halt the entire memory is compared byte for byte.
//
// Cycle counts, per-register readiness, cache and predictor state, and
// the PMU counters are exempt: they are micro-architectural (DESIGN.md
// §1/§8). RDTSC — the one instruction that copies time into architectural
// state — is handled by feeding the core's pre-step cycle to the oracle's
// TimeFn, so its result is compared like any other register write.
//
// Both machines must have been built over identical, private memories
// with identical entry PC and SP; RunProgram does this from a
// progen.Program.
func Lockstep(c *cpu.CPU, o *Machine, maxInstr uint64, pre PreStep) Result {
	// Dirty-page tracking: both memories report stores into a shared
	// per-step page set (plus an all-run set for the final sweep).
	stepPages := map[uint64]struct{}{}
	mark := func(addr uint64, n int) {
		for pg := addr / mem.PageSize; pg <= (addr+uint64(n)-1)/mem.PageSize; pg++ {
			stepPages[pg] = struct{}{}
		}
	}
	c.Mem.OnWrite = mark
	o.Mem.OnWrite = mark

	// RDTSC contract: the value the core writes is its cycle count at
	// instruction start, captured here before each Step.
	var now uint64
	o.TimeFn = func() uint64 { return now }

	var res Result
	for step := uint64(0); step < maxInstr; step++ {
		if c.Halted() && o.Halted {
			res.Halted = true
			break
		}
		if pre != nil {
			pre(step, c, o)
		}
		pc := c.PC
		now = c.Cycle
		clear(stepPages)

		errC := c.Step()
		errO := o.Step()
		res.Steps = step + 1

		if errC != nil || errO != nil {
			if reasons := compareFaults(errC, errO); len(reasons) > 0 {
				res.Div = &Divergence{Step: step, PC: pc, Reasons: reasons}
				return res
			}
			// Identical faults: a passing outcome, but still sweep memory.
			res.Fault = errC
			if reason := compareAllMemory(c, o); reason != "" {
				res.Div = &Divergence{Step: step, PC: pc, Reasons: []string{reason}}
			}
			return res
		}

		if reasons := compareState(c, o, stepPages); len(reasons) > 0 {
			res.Div = &Divergence{Step: step, PC: pc, Reasons: reasons}
			return res
		}
	}
	if !res.Halted {
		if c.Halted() && o.Halted {
			res.Halted = true
		} else {
			res.BudgetExhausted = true
			return res
		}
	}
	if reason := compareAllMemory(c, o); reason != "" {
		res.Div = &Divergence{Step: res.Steps, PC: c.PC, Reasons: []string{reason}}
	}
	return res
}

// compareState checks the per-retire architectural contract.
func compareState(c *cpu.CPU, o *Machine, pages map[uint64]struct{}) []string {
	var reasons []string
	if c.PC != o.PC {
		reasons = append(reasons, fmt.Sprintf("PC: core=%#x oracle=%#x", c.PC, o.PC))
	}
	if c.Halted() != o.Halted {
		reasons = append(reasons, fmt.Sprintf("halted: core=%v oracle=%v", c.Halted(), o.Halted))
	}
	for r := 0; r < isa.NumRegs; r++ {
		if c.Regs[r] != o.Regs[r] {
			reasons = append(reasons, fmt.Sprintf("r%d: core=%#x oracle=%#x", r, c.Regs[r], o.Regs[r]))
		}
	}
	cz, clt, cb := c.Flags()
	if cz != o.FlagZ || clt != o.FlagLT || cb != o.FlagB {
		reasons = append(reasons, fmt.Sprintf("flags: core=(z=%v lt=%v b=%v) oracle=(z=%v lt=%v b=%v)",
			cz, clt, cb, o.FlagZ, o.FlagLT, o.FlagB))
	}
	for pg := range pages {
		if r := comparePage(c, o, pg); r != "" {
			reasons = append(reasons, r)
		}
	}
	return reasons
}

func comparePage(c *cpu.CPU, o *Machine, pg uint64) string {
	a, errA := c.Mem.PeekRaw(pg*mem.PageSize, mem.PageSize)
	b, errB := o.Mem.PeekRaw(pg*mem.PageSize, mem.PageSize)
	if errA != nil || errB != nil {
		return fmt.Sprintf("page %#x: peek failed (core=%v oracle=%v)", pg, errA, errB)
	}
	if !bytes.Equal(a, b) {
		i := firstDiff(a, b)
		return fmt.Sprintf("mem[%#x]: core=%#02x oracle=%#02x (page %#x)",
			pg*mem.PageSize+uint64(i), a[i], b[i], pg)
	}
	return ""
}

func compareAllMemory(c *cpu.CPU, o *Machine) string {
	a, _ := c.Mem.PeekRaw(0, c.Mem.Size())
	b, _ := o.Mem.PeekRaw(0, o.Mem.Size())
	if len(a) != len(b) {
		return fmt.Sprintf("memory sizes differ: core=%d oracle=%d", len(a), len(b))
	}
	if !bytes.Equal(a, b) {
		i := firstDiff(a, b)
		return fmt.Sprintf("final memory sweep: mem[%#x]: core=%#02x oracle=%#02x", i, a[i], b[i])
	}
	return ""
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// compareFaults decides whether two per-step errors are the same
// architectural event. Both sides wrap faults with the faulting PC
// (cpu.Fault / oracle.Fault); the causes are compared structurally for
// memory faults (kind + address) and by normalized message otherwise
// (each side prefixes its package name, which is stripped).
func compareFaults(errC, errO error) []string {
	if errC == nil {
		return []string{fmt.Sprintf("oracle faulted but core did not: %v", errO)}
	}
	if errO == nil {
		return []string{fmt.Sprintf("core faulted but oracle did not: %v", errC)}
	}
	var reasons []string
	pcC, keyC := faultKey(errC)
	pcO, keyO := faultKey(errO)
	if pcC != pcO {
		reasons = append(reasons, fmt.Sprintf("fault PC: core=%#x oracle=%#x", pcC, pcO))
	}
	if keyC != keyO {
		reasons = append(reasons, fmt.Sprintf("fault cause: core=%q oracle=%q", keyC, keyO))
	}
	return reasons
}

func faultKey(err error) (pc uint64, key string) {
	var cf *cpu.Fault
	var of *Fault
	inner := err
	switch {
	case errors.As(err, &cf):
		pc, inner = cf.PC, cf.Err
	case errors.As(err, &of):
		pc, inner = of.PC, of.Err
	}
	var mf *mem.Fault
	if errors.As(inner, &mf) {
		return pc, fmt.Sprintf("mem/%s/%#x", mf.Kind, mf.Addr)
	}
	msg := inner.Error()
	msg = strings.TrimPrefix(msg, "cpu: ")
	msg = strings.TrimPrefix(msg, "oracle: ")
	return pc, msg
}

// RunProgram builds the optimized core and the reference machine over two
// identically initialized private memories for p and lock-steps them to
// completion. This is difftest's per-program kernel; cfg selects the
// micro-architectural posture under test (speculation on/off, InvisiSpec,
// fencing, noise...), none of which may change architectural results.
func RunProgram(p progen.Program, cfg cpu.Config, maxInstr uint64, pre PreStep) (Result, error) {
	mc, err := p.NewMem()
	if err != nil {
		return Result{}, fmt.Errorf("oracle: core memory: %w", err)
	}
	mo, err := p.NewMem()
	if err != nil {
		return Result{}, fmt.Errorf("oracle: oracle memory: %w", err)
	}
	c := cpu.New(mc, cfg)
	c.PC = p.CodeBase
	c.Regs[isa.RegSP] = p.StackTop
	o := New(mo)
	o.PC = p.CodeBase
	o.Regs[isa.RegSP] = p.StackTop
	o.PrivilegedFlush = cfg.PrivilegedFlush
	return Lockstep(c, o, maxInstr, pre), nil
}
