// Package oracle is the simulator's independent correctness reference: a
// deliberately slow, obviously-correct interpreter for the full
// internal/isa ISA, plus a differential executor (diff.go) that lock-steps
// it against the optimized speculative core and a minimizing reporter
// (minimize.go) that shrinks any divergence to the shortest failing
// instruction prefix.
//
// The interpreter models *architectural* semantics only: every fetch goes
// through the permission-checked mem.Fetch, every decode through the fully
// validating isa.Decode, and there is no predecode cache, no cache
// hierarchy, no branch prediction and no speculation. That makes it immune
// by construction to the entire class of bugs the optimized core can have
// — stale predecode entries, fast-path byte arithmetic, wrong-path state
// leaking past a squash — which is exactly what qualifies it as an oracle
// (see DESIGN.md §8 for the contract: what must match, what is exempt).
package oracle

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// ErrHalted is returned by Step when the machine has already halted.
var ErrHalted = errors.New("oracle: halted")

// ErrBudget is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrBudget = errors.New("oracle: instruction budget exhausted")

// Fault wraps an execution fault with the PC at which it occurred,
// mirroring cpu.Fault so the differential executor can compare the two.
type Fault struct {
	PC  uint64
	Err error
}

func (f *Fault) Error() string { return fmt.Sprintf("oracle: fault at pc=%#x: %v", f.PC, f.Err) }

// Unwrap exposes the underlying cause (e.g. *mem.Fault).
func (f *Fault) Unwrap() error { return f.Err }

// SyscallFn handles a SYSCALL instruction on the reference machine.
type SyscallFn func(o *Machine) error

// Machine is the reference interpreter's complete state: the architectural
// register file, PC, comparison flags and a halted bit — nothing else.
// There is no cycle counter; time is an *input* (TimeFn) so that RDTSC,
// the one instruction whose architectural result depends on
// micro-architectural timing, can be driven from outside (the differential
// executor feeds it the optimized core's cycle at each instruction).
type Machine struct {
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *mem.Memory

	FlagZ  bool // last CMP: equal
	FlagLT bool // last CMP: less-than, signed
	FlagB  bool // last CMP: below, unsigned

	// Halted is set by HALT (and by SysExit-style handlers).
	Halted bool

	// PrivilegedFlush mirrors cpu.Config.PrivilegedFlush: CLFLUSH and
	// MFENCE fault in user code when set.
	PrivilegedFlush bool

	// TimeFn supplies the value RDTSC writes. Nil means RDTSC reads the
	// retired-instruction count — a deterministic stand-in for standalone
	// oracle runs.
	TimeFn func() uint64

	// OnSyscall handles SYSCALL; nil means SYSCALL faults (exactly as the
	// optimized core does when no handler is installed).
	OnSyscall SyscallFn

	// Instret counts retired instructions.
	Instret uint64
}

// New builds a reference machine over the given memory. The memory must be
// private to the machine: the differential executor gives the oracle and
// the optimized core separate, identically initialized memories so their
// stores can be compared.
func New(m *mem.Memory) *Machine {
	return &Machine{Mem: m}
}

// Run executes until HALT or until maxInstr instructions retire, returning
// ErrBudget in the latter case.
func (o *Machine) Run(maxInstr uint64) error {
	for i := uint64(0); i < maxInstr; i++ {
		if o.Halted {
			return nil
		}
		if err := o.Step(); err != nil {
			return err
		}
	}
	if o.Halted {
		return nil
	}
	return ErrBudget
}

// Step retires exactly one instruction. Every step pays the full
// permission-checked fetch and the fully validating decode; there is no
// memoization of any kind. A fault leaves all state untouched (except
// SYSCALL, whose PC advances before the handler runs — matching the
// optimized core).
func (o *Machine) Step() error {
	if o.Halted {
		return ErrHalted
	}
	raw, err := o.Mem.Fetch(o.PC, isa.InstrSize)
	if err != nil {
		return &Fault{PC: o.PC, Err: err}
	}
	in, err := isa.Decode(raw)
	if err != nil {
		return &Fault{PC: o.PC, Err: err}
	}
	if err := o.execute(in); err != nil {
		return &Fault{PC: o.PC, Err: err}
	}
	o.Instret++
	return nil
}

var (
	errDivZero    = errors.New("division by zero")
	errPrivileged = errors.New("privileged instruction in user mode")
	errNoSyscall  = errors.New("SYSCALL with no handler")
)

// execute applies one decoded instruction to the architectural state. The
// semantics — including field-aliasing quirks like POP into SP and
// PUSH/CALLR of SP — are written out case by case in the most direct form
// possible; clarity over speed is the whole point of this package.
func (o *Machine) execute(in isa.Instruction) error {
	next := o.PC + isa.InstrSize
	switch in.Op {
	case isa.NOP:
		o.PC = next

	case isa.HALT:
		// PC deliberately does not advance: the halt PC is architectural
		// and the optimized core leaves it at the HALT instruction too.
		o.Halted = true

	case isa.MOVI:
		o.Regs[in.Rd] = uint64(in.Imm)
		o.PC = next

	case isa.MOV:
		o.Regs[in.Rd] = o.Regs[in.Rs1]
		o.PC = next

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR:
		v, err := refALU(in.Op, o.Regs[in.Rs1], o.Regs[in.Rs2])
		if err != nil {
			return err
		}
		o.Regs[in.Rd] = v
		o.PC = next

	case isa.ADDI, isa.SUBI, isa.MULI, isa.DIVI, isa.MODI,
		isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI:
		v, err := refALU(immBase(in.Op), o.Regs[in.Rs1], uint64(in.Imm))
		if err != nil {
			return err
		}
		o.Regs[in.Rd] = v
		o.PC = next

	case isa.LOAD:
		v, err := o.Mem.Read64(o.Regs[in.Rs1] + uint64(in.Imm))
		if err != nil {
			return err
		}
		o.Regs[in.Rd] = v
		o.PC = next

	case isa.LOADB:
		b, err := o.Mem.Read8(o.Regs[in.Rs1] + uint64(in.Imm))
		if err != nil {
			return err
		}
		o.Regs[in.Rd] = uint64(b)
		o.PC = next

	case isa.STORE:
		if err := o.Mem.Write64(o.Regs[in.Rs1]+uint64(in.Imm), o.Regs[in.Rs2]); err != nil {
			return err
		}
		o.PC = next

	case isa.STOREB:
		if err := o.Mem.Write8(o.Regs[in.Rs1]+uint64(in.Imm), byte(o.Regs[in.Rs2])); err != nil {
			return err
		}
		o.PC = next

	case isa.PUSH:
		// The pushed value is read before SP is updated, so PUSH sp
		// pushes the pre-decrement stack pointer.
		sp := o.Regs[isa.RegSP] - 8
		if err := o.Mem.Write64(sp, o.Regs[in.Rs1]); err != nil {
			return err
		}
		o.Regs[isa.RegSP] = sp
		o.PC = next

	case isa.POP:
		// SP is written after rd, so POP sp leaves SP = old SP + 8 (the
		// popped value is discarded) — matching the optimized core's
		// writeback order.
		sp := o.Regs[isa.RegSP]
		v, err := o.Mem.Read64(sp)
		if err != nil {
			return err
		}
		o.Regs[in.Rd] = v
		o.Regs[isa.RegSP] = sp + 8
		o.PC = next

	case isa.CMP:
		o.setFlags(o.Regs[in.Rs1], o.Regs[in.Rs2])
		o.PC = next

	case isa.CMPI:
		o.setFlags(o.Regs[in.Rs1], uint64(in.Imm))
		o.PC = next

	case isa.JMP:
		o.PC = uint64(in.Imm)

	case isa.JE, isa.JNE, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE:
		if o.branchTaken(in.Op) {
			o.PC = uint64(in.Imm)
		} else {
			o.PC = next
		}

	case isa.CALL:
		sp := o.Regs[isa.RegSP] - 8
		if err := o.Mem.Write64(sp, next); err != nil {
			return err
		}
		o.Regs[isa.RegSP] = sp
		o.PC = uint64(in.Imm)

	case isa.CALLR:
		// The target is latched before the push, so CALLR sp jumps to the
		// pre-decrement stack pointer.
		target := o.Regs[in.Rs1]
		sp := o.Regs[isa.RegSP] - 8
		if err := o.Mem.Write64(sp, next); err != nil {
			return err
		}
		o.Regs[isa.RegSP] = sp
		o.PC = target

	case isa.JMPR:
		o.PC = o.Regs[in.Rs1]

	case isa.RET:
		sp := o.Regs[isa.RegSP]
		ret, err := o.Mem.Read64(sp)
		if err != nil {
			return err
		}
		o.Regs[isa.RegSP] = sp + 8
		o.PC = ret

	case isa.CLFLUSH:
		// Architecturally a no-op (no permission check on the flushed
		// address), except under the privileged-flush countermeasure.
		if o.PrivilegedFlush {
			return errPrivileged
		}
		o.PC = next

	case isa.MFENCE:
		if o.PrivilegedFlush {
			return errPrivileged
		}
		o.PC = next

	case isa.LFENCE:
		// LFENCE is never privileged: it is the sanctioned speculation
		// barrier even under the §IV countermeasure.
		o.PC = next

	case isa.RDTSC:
		if o.TimeFn != nil {
			o.Regs[in.Rd] = o.TimeFn()
		} else {
			o.Regs[in.Rd] = o.Instret
		}
		o.PC = next

	case isa.SYSCALL:
		// PC advances before the handler runs (and before the no-handler
		// fault), matching the optimized core's retire order.
		o.PC = next
		if o.OnSyscall == nil {
			return errNoSyscall
		}
		if err := o.OnSyscall(o); err != nil {
			return err
		}

	default:
		return fmt.Errorf("unimplemented opcode %s", in.Op)
	}
	return nil
}

func (o *Machine) setFlags(a, b uint64) {
	o.FlagZ = a == b
	o.FlagLT = int64(a) < int64(b)
	o.FlagB = a < b
}

// branchTaken evaluates a conditional branch against the flags. Written
// out independently of the core's condEval so the two implementations can
// disagree (and the disagreement be caught) rather than share a bug.
func (o *Machine) branchTaken(op isa.Op) bool {
	switch op {
	case isa.JE:
		return o.FlagZ
	case isa.JNE:
		return !o.FlagZ
	case isa.JL:
		return o.FlagLT
	case isa.JLE:
		return o.FlagLT || o.FlagZ
	case isa.JG:
		return !o.FlagLT && !o.FlagZ
	case isa.JGE:
		return !o.FlagLT
	case isa.JB:
		return o.FlagB
	case isa.JBE:
		return o.FlagB || o.FlagZ
	case isa.JA:
		return !o.FlagB && !o.FlagZ
	case isa.JAE:
		return !o.FlagB
	}
	return false
}

// refALU computes one ALU operation. Independent of cpu's alu() on
// purpose; shift counts mask to 6 bits as the ISA defines.
func refALU(op isa.Op, a, b uint64) (uint64, error) {
	switch op {
	case isa.ADD:
		return a + b, nil
	case isa.SUB:
		return a - b, nil
	case isa.MUL:
		return a * b, nil
	case isa.DIV:
		if b == 0 {
			return 0, errDivZero
		}
		return a / b, nil
	case isa.MOD:
		if b == 0 {
			return 0, errDivZero
		}
		return a % b, nil
	case isa.AND:
		return a & b, nil
	case isa.OR:
		return a | b, nil
	case isa.XOR:
		return a ^ b, nil
	case isa.SHL:
		return a << (b & 63), nil
	case isa.SHR:
		return a >> (b & 63), nil
	case isa.SAR:
		return uint64(int64(a) >> (b & 63)), nil
	}
	return 0, fmt.Errorf("not an ALU op: %s", op)
}

// immBase maps an immediate-form ALU opcode to its register form.
func immBase(op isa.Op) isa.Op {
	switch op {
	case isa.ADDI:
		return isa.ADD
	case isa.SUBI:
		return isa.SUB
	case isa.MULI:
		return isa.MUL
	case isa.DIVI:
		return isa.DIV
	case isa.MODI:
		return isa.MOD
	case isa.ANDI:
		return isa.AND
	case isa.ORI:
		return isa.OR
	case isa.XORI:
		return isa.XOR
	case isa.SHLI:
		return isa.SHL
	case isa.SHRI:
		return isa.SHR
	}
	return op
}
