package oracle

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/progen"
)

// TierPreSlice, when non-nil, runs before each slice of a tier-diff run.
// Like PreStep it exists for fault injection in the harness's own tests
// (difftest -selftest corrupts one side through it to prove the ring
// would catch a broken block tier); production runs pass nil.
type TierPreSlice func(slice uint64, blocks, single *cpu.CPU)

// TierResult reports one block-tier differential run (RunTierDiff).
type TierResult struct {
	// Steps is the number of instructions both cores retired.
	Steps uint64
	// Halted reports a clean HALT on both tiers.
	Halted bool
	// Fault, when non-nil, is the identical fault both tiers raised — a
	// passing outcome, like Lockstep's.
	Fault error
	// Div is non-nil when the tiers disagreed.
	Div *Divergence
	// Blocks is the block-tier core's cache statistics, so callers can
	// assert the fast tier actually engaged (Hits > 0) rather than
	// silently comparing the interpreter against itself.
	Blocks cpu.BlockStats
}

// Clean reports whether the run completed without divergence.
func (r TierResult) Clean() bool { return r.Div == nil }

// RunTierDiff runs p on two optimized cores over identically initialized
// private memories — one with the superblock tier enabled, one forced to
// the single-step interpreter — and compares them under a contract
// strictly harsher than Lockstep's: not just the architectural state but
// the *entire* PMU snapshot, Cycle and StallCycles included, must agree
// at every comparison point. The block tier is a host optimization of
// the same simulated machine, so there is no micro-architectural
// exemption (DESIGN.md §11); the golden figure CSVs are differences of
// exactly these counters.
//
// The cores advance in slices of sliceInstr retired instructions (the
// block tier retires exactly its budget unless it halts or faults, so
// both sides stay aligned), letting a divergence be localized to a slice
// without paying a per-instruction Run call. sliceInstr == 0 picks a
// default that exercises block re-entry across slice boundaries.
func RunTierDiff(p progen.Program, cfg cpu.Config, maxInstr, sliceInstr uint64, pre TierPreSlice) (TierResult, error) {
	if sliceInstr == 0 {
		sliceInstr = 257 // prime: slice edges drift across block boundaries
	}
	mb, err := p.NewMem()
	if err != nil {
		return TierResult{}, fmt.Errorf("oracle: block-tier memory: %w", err)
	}
	ms, err := p.NewMem()
	if err != nil {
		return TierResult{}, fmt.Errorf("oracle: single-step memory: %w", err)
	}
	cfgB, cfgS := cfg, cfg
	cfgB.NoBlocks = false
	cfgS.NoBlocks = true
	cb := cpu.New(mb, cfgB)
	cs := cpu.New(ms, cfgS)
	for _, c := range []*cpu.CPU{cb, cs} {
		c.PC = p.CodeBase
		c.Regs[isa.RegSP] = p.StackTop
	}

	var res TierResult
	for slice := uint64(0); res.Steps < maxInstr; slice++ {
		if pre != nil {
			pre(slice, cb, cs)
		}
		budget := sliceInstr
		if rem := maxInstr - res.Steps; rem < budget {
			budget = rem
		}
		errB := runSlice(cb, budget)
		errS := runSlice(cs, budget)
		res.Steps = cb.Instret()
		res.Blocks = cb.BlockStats()

		if errB != nil || errS != nil {
			if reasons := compareFaults(errB, errS); len(reasons) > 0 {
				res.Div = &Divergence{Step: res.Steps, PC: cb.PC, Reasons: reasons}
				return res, nil
			}
			res.Fault = errB
		}
		if reasons := compareTiers(cb, cs); len(reasons) > 0 {
			res.Div = &Divergence{Step: res.Steps, PC: cb.PC, Reasons: reasons}
			return res, nil
		}
		if res.Fault != nil {
			return res, nil
		}
		if cb.Halted() {
			res.Halted = true
			return res, nil
		}
	}
	return res, nil
}

// runSlice advances c by up to n retired instructions, treating budget
// exhaustion as a non-event.
func runSlice(c *cpu.CPU, n uint64) error {
	if err := c.Run(n); err != nil && err != cpu.ErrBudget {
		return err
	}
	return nil
}

// compareTiers checks the tier contract: full architectural state, the
// complete PMU snapshot, and every dirtied byte of memory.
func compareTiers(cb, cs *cpu.CPU) []string {
	var reasons []string
	if cb.PC != cs.PC {
		reasons = append(reasons, fmt.Sprintf("PC: blocks=%#x single-step=%#x", cb.PC, cs.PC))
	}
	if cb.Halted() != cs.Halted() {
		reasons = append(reasons, fmt.Sprintf("halted: blocks=%v single-step=%v", cb.Halted(), cs.Halted()))
	}
	for r := 0; r < isa.NumRegs; r++ {
		if cb.Regs[r] != cs.Regs[r] {
			reasons = append(reasons, fmt.Sprintf("r%d: blocks=%#x single-step=%#x", r, cb.Regs[r], cs.Regs[r]))
		}
	}
	bz, blt, bb := cb.Flags()
	sz, slt, sb := cs.Flags()
	if bz != sz || blt != slt || bb != sb {
		reasons = append(reasons, fmt.Sprintf("flags: blocks=(z=%v lt=%v b=%v) single-step=(z=%v lt=%v b=%v)",
			bz, blt, bb, sz, slt, sb))
	}
	if sb, ss := cb.Snapshot(), cs.Snapshot(); sb != ss {
		reasons = append(reasons, snapshotDiff(sb, ss)...)
	}
	if reason := compareAllMemory(cb, &Machine{Mem: cs.Mem}); reason != "" {
		reasons = append(reasons, reason)
	}
	return reasons
}

// snapshotDiff names every PMU counter the tiers disagree on.
func snapshotDiff(a, b cpu.Snapshot) []string {
	var reasons []string
	add := func(name string, va, vb uint64) {
		if va != vb {
			reasons = append(reasons, fmt.Sprintf("pmu %s: blocks=%d single-step=%d", name, va, vb))
		}
	}
	add("Cycles", a.Cycles, b.Cycles)
	add("Instructions", a.Instructions, b.Instructions)
	add("Loads", a.Loads, b.Loads)
	add("Stores", a.Stores, b.Stores)
	add("L1Accesses", a.L1Accesses, b.L1Accesses)
	add("L1Misses", a.L1Misses, b.L1Misses)
	add("L1Evicts", a.L1Evicts, b.L1Evicts)
	add("L1Flushes", a.L1Flushes, b.L1Flushes)
	add("L2Accesses", a.L2Accesses, b.L2Accesses)
	add("L2Misses", a.L2Misses, b.L2Misses)
	add("L2Evicts", a.L2Evicts, b.L2Evicts)
	add("L2Flushes", a.L2Flushes, b.L2Flushes)
	add("CondBranches", a.CondBranches, b.CondBranches)
	add("CondMispred", a.CondMispred, b.CondMispred)
	add("Returns", a.Returns, b.Returns)
	add("ReturnMispred", a.ReturnMispred, b.ReturnMispred)
	add("Indirect", a.Indirect, b.Indirect)
	add("IndirectMiss", a.IndirectMiss, b.IndirectMiss)
	add("Direct", a.Direct, b.Direct)
	add("SpecInstructions", a.SpecInstructions, b.SpecInstructions)
	add("SpecLoads", a.SpecLoads, b.SpecLoads)
	add("Squashes", a.Squashes, b.Squashes)
	add("SpecBypasses", a.SpecBypasses, b.SpecBypasses)
	add("IndirectSpecTargets", a.IndirectSpecTargets, b.IndirectSpecTargets)
	add("Flushes", a.Flushes, b.Flushes)
	add("Fences", a.Fences, b.Fences)
	add("Syscalls", a.Syscalls, b.Syscalls)
	add("StallCycles", a.StallCycles, b.StallCycles)
	return reasons
}
