package repro

// Benchmark harness: one benchmark per paper artefact (Fig. 4, Fig. 5,
// Fig. 6, Table I) plus ablation benchmarks for the design choices
// DESIGN.md calls out. Figure benches run a CI-scaled campaign per
// iteration and report the headline metric of the corresponding plot via
// b.ReportMetric, so `go test -bench` regenerates the paper's numbers:
//
//	fig4 — accuracy at feature sizes 4 and 1
//	fig5 — offline-HID accuracy: plain Spectre vs CR-Spectre
//	fig6 — online-HID minimum accuracy (the paper's 16% headline)
//	table1 — mean perturbation overhead (paper: 0.6% / 1.1%)

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/gadget"
	"repro/internal/mibench"
	"repro/internal/perturb"
	"repro/internal/rop"
	"repro/internal/spectre"
	"repro/internal/vm"
)

// benchWorkers bounds the experiment engine's parallelism in the figure
// benchmarks (0 = all cores); results are identical for any value, only
// wall-clock changes: go test -bench Fig5 -workers 1.
var benchWorkers = flag.Int("workers", 0, "worker pool width for figure benchmarks (0 = all cores)")

// benchConfig is the CI-scaled campaign configuration shared by the
// figure benchmarks. Raise SamplesPerClass/Attempts for paper-scale runs
// (see cmd/experiments).
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.SamplesPerClass = 120
	cfg.Attempts = 5
	cfg.Secret = "SECR3T42"
	cfg.Classifiers = []string{"mlp", "lr"}
	cfg.Interval = 10_000
	cfg.Workers = *benchWorkers
	return cfg
}

// BenchmarkFig4FeatureSize regenerates the Fig. 4 sweep and reports the
// mean accuracy at feature sizes 4 (the paper's operating point) and 1
// (the collapsed configuration). The workers sub-benchmarks produce
// identical accuracies — comparing their ns/op is the engine's speedup.
func BenchmarkFig4FeatureSize(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig4(cfg)
				if err != nil {
					b.Fatal(err)
				}
				mean := func(size int) float64 {
					var s float64
					n := 0
					for _, r := range rows {
						if r.FeatureSize == size {
							s += r.Accuracy
							n++
						}
					}
					return s / float64(n)
				}
				b.ReportMetric(100*mean(4), "acc4_%")
				b.ReportMetric(100*mean(1), "acc1_%")
			}
		})
	}
}

// BenchmarkCorpusSpeedup times the same benign-corpus build at Workers=1
// and Workers=4 inside one iteration and reports the ratio directly as
// speedup_x — the headline number for the parallel experiment engine.
func BenchmarkCorpusSpeedup(b *testing.B) {
	cfg := benchConfig()
	cfg.SamplesPerClass = 200
	workloads := mibench.AllWithBackgrounds()
	for i := 0; i < b.N; i++ {
		cfg.Workers = 1
		start := time.Now()
		if _, err := cfg.BenignCorpus(workloads, cfg.SamplesPerClass); err != nil {
			b.Fatal(err)
		}
		seq := time.Since(start)
		cfg.Workers = 4
		start = time.Now()
		if _, err := cfg.BenignCorpus(workloads, cfg.SamplesPerClass); err != nil {
			b.Fatal(err)
		}
		par := time.Since(start)
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_x")
		b.ReportMetric(seq.Seconds(), "seq_s")
		b.ReportMetric(par.Seconds(), "par_s")
	}
}

// BenchmarkFig5OfflineHID regenerates the offline campaign and reports
// panel (a) and panel (b) mean accuracies — the detected-vs-evaded gap.
func BenchmarkFig5OfflineHID(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*experiments.MeanAccuracy(res.Plain), "spectre_%")
		b.ReportMetric(100*experiments.MeanAccuracy(res.CR), "crspectre_%")
		b.ReportMetric(100*experiments.MinAccuracy(res.CR), "crmin_%")
	}
}

// BenchmarkFig6OnlineHID regenerates the online campaign; crmin_% is the
// paper's "lowest observed accuracy of 16%" headline.
func BenchmarkFig6OnlineHID(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*experiments.MeanAccuracy(res.Plain), "spectre_%")
		b.ReportMetric(100*experiments.MeanAccuracy(res.CR), "crspectre_%")
		b.ReportMetric(100*experiments.MinAccuracy(res.CR), "crmin_%")
	}
}

// BenchmarkTable1IPCOverhead regenerates the overhead table and reports
// the mean perturbation overheads (paper: offline 0.6%, online 1.1%).
func BenchmarkTable1IPCOverhead(b *testing.B) {
	cfg := benchConfig()
	cfg.Reps = 2
	workloads := []mibench.Workload{
		mibench.Math(2_000),
		mibench.Bitcount("bitcount_50M", 25_000),
		mibench.SHA1(150),
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1For(cfg, workloads)
		if err != nil {
			b.Fatal(err)
		}
		off, on := experiments.MeanOverheads(rows)
		b.ReportMetric(100*off, "offline_ovh_%")
		b.ReportMetric(100*on, "online_ovh_%")
		b.ReportMetric(rows[0].IPCOriginal, "math_ipc")
	}
}

// leakRate runs one standalone leak and returns recovered bytes and the
// cycles it took.
func leakRate(b *testing.B, coreCfg cpu.Config, secret string) (recovered int, cycles uint64) {
	b.Helper()
	cfg := experiments.DefaultConfig()
	cfg.Secret = secret
	cfg.CPU = coreCfg
	_, m, err := experiments.RunStandalone(cfg, experiments.AttackSpec{Variant: spectre.V1BoundsCheck}, 1)
	if err != nil {
		b.Fatal(err)
	}
	out := m.Output.String()
	for i := 0; i < len(out) && i < len(secret); i++ {
		if out[i] == secret[i] {
			recovered++
		}
	}
	return recovered, m.CPU.Cycle
}

// BenchmarkAblationSpecWindow sweeps the speculation window (DESIGN.md
// ablation 2): the leak needs the window to cover the dependent-load
// chain; tiny windows kill it.
func BenchmarkAblationSpecWindow(b *testing.B) {
	for _, window := range []int{2, 8, 64, 192} {
		b.Run("w"+itoa(window), func(b *testing.B) {
			coreCfg := cpu.DefaultConfig()
			coreCfg.SpecWindow = window
			for i := 0; i < b.N; i++ {
				rec, cyc := leakRate(b, coreCfg, "ABCDEFGH")
				b.ReportMetric(float64(rec), "bytes_leaked")
				b.ReportMetric(float64(rec)/(float64(cyc)/1e6), "bytes_per_Mcycle")
			}
		})
	}
}

// BenchmarkAblationDefenses measures the leak under each modelled
// hardware defense (DESIGN.md ablation 1): InvisiSpec-style squash
// rollback and full speculation disable must zero the channel.
func BenchmarkAblationDefenses(b *testing.B) {
	cases := map[string]func(*cpu.Config){
		"baseline":       func(c *cpu.Config) {},
		"invisispec":     func(c *cpu.Config) { c.SquashCacheEffects = true },
		"no_speculation": func(c *cpu.Config) { c.SpeculationEnabled = false },
	}
	for name, mutate := range cases {
		b.Run(name, func(b *testing.B) {
			coreCfg := cpu.DefaultConfig()
			mutate(&coreCfg)
			for i := 0; i < b.N; i++ {
				rec, _ := leakRate(b, coreCfg, "ABCDEFGH")
				b.ReportMetric(float64(rec), "bytes_leaked")
			}
		})
	}
}

// BenchmarkAblationVariants compares the four Spectre variants' leak
// throughput on the baseline core.
func BenchmarkAblationVariants(b *testing.B) {
	for _, v := range spectre.Variants() {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			cfg := experiments.DefaultConfig()
			cfg.Secret = "ABCDEFGH"
			for i := 0; i < b.N; i++ {
				_, m, err := experiments.RunStandalone(cfg, experiments.AttackSpec{Variant: v}, 1)
				if err != nil {
					b.Fatal(err)
				}
				ok := 0.0
				if m.Output.String() == cfg.Secret {
					ok = 1
				}
				b.ReportMetric(ok, "leak_ok")
				b.ReportMetric(float64(len(cfg.Secret))/(float64(m.CPU.Cycle)/1e6), "bytes_per_Mcycle")
			}
		})
	}
}

// BenchmarkAblationPerturbCost isolates the perturbation's execution
// cost (DESIGN.md ablation 3): instructions added per leaked byte for
// the paper variant vs a heavy mutation.
func BenchmarkAblationPerturbCost(b *testing.B) {
	run := func(b *testing.B, pp *perturb.Params) {
		cfg := experiments.DefaultConfig()
		cfg.Secret = "ABCDEFGH"
		for i := 0; i < b.N; i++ {
			_, m, err := experiments.RunStandalone(cfg, experiments.AttackSpec{
				Variant: spectre.V1BoundsCheck, Perturb: pp,
			}, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(m.CPU.Instret())/float64(len(cfg.Secret)), "instr_per_byte")
			b.ReportMetric(float64(m.CPU.Snapshot().Flushes), "clflush_total")
		}
	}
	b.Run("none", func(b *testing.B) { run(b, nil) })
	paperV := perturb.Paper()
	b.Run("paper", func(b *testing.B) { run(b, &paperV) })
	heavy := perturb.Scaled(8)
	heavy.Delay = 120
	b.Run("heavy", func(b *testing.B) { run(b, &heavy) })
}

// BenchmarkGadgetScan measures gadget discovery over a full host image.
func BenchmarkGadgetScan(b *testing.B) {
	host := mibench.SHA1(40)
	mod, err := host.HostModule(rop.HostOptions{})
	if err != nil {
		b.Fatal(err)
	}
	img, err := mod.Link(0x100000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs := gadget.Scan(img, 3)
		if len(gs) == 0 {
			b.Fatal("no gadgets")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second on a branchy integer kernel — the platform's speed budget. The
// sub-benchmarks select the execution tier (DESIGN.md §6): "blocks" is
// the default superblock tier, "noblocks" the single-step interpreter
// over the predecode cache, "interp" the bare decode-every-step
// interpreter. CI's bench-smoke job asserts blocks ≥ noblocks; all
// three retire the identical instruction stream on the identical
// simulated machine, so the ns/op ratio is pure host-tier speedup.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := mibench.Bitcount("bench", 20_000)
	mod, err := w.HostModule(rop.HostOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name                  string
		noBlocks, noPredecode bool
	}{
		{"blocks", false, false},
		{"noblocks", true, false},
		{"interp", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var instr uint64
			for i := 0; i < b.N; i++ {
				cfg := vm.DefaultConfig()
				cfg.CPU.NoBlocks = tc.noBlocks
				cfg.CPU.NoPredecode = tc.noPredecode
				m := vm.New(cfg)
				m.Register("w", mod, 0x100000)
				if err := m.Exec("w", []byte("x"), 1<<32); err != nil {
					b.Fatal(err)
				}
				instr += m.CPU.Instret()
			}
			b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationChannelNoise sweeps co-tenant cache interference
// against receiver redundancy: the single-round receiver degrades while
// the multi-round voting receiver (the original PoC's scoring loop)
// rides the noise out.
func BenchmarkAblationChannelNoise(b *testing.B) {
	secret := "ABCDEFGH"
	for _, tc := range []struct {
		name   string
		period uint64
		rounds int
	}{
		{"clean_r1", 0, 1},
		{"noisy_r1", 60, 1},
		{"noisy_r5", 60, 5},
		{"noisy_r9", 60, 9},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			coreCfg := cpu.DefaultConfig()
			coreCfg.NoisePeriod = tc.period
			coreCfg.NoiseSeed = 77
			cfg := experiments.DefaultConfig()
			cfg.Secret = secret
			cfg.CPU = coreCfg
			for i := 0; i < b.N; i++ {
				_, m, err := experiments.RunStandalone(cfg, experiments.AttackSpec{
					Variant: spectre.V1BoundsCheck,
					Rounds:  tc.rounds,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				out := m.Output.String()
				ok := 0
				for j := 0; j < len(out) && j < len(secret); j++ {
					if out[j] == secret[j] {
						ok++
					}
				}
				b.ReportMetric(float64(ok), "bytes_correct")
				b.ReportMetric(float64(len(secret))/(float64(m.CPU.Cycle)/1e6), "bytes_per_Mcycle")
			}
		})
	}
}

// BenchmarkAblationCoTenant replaces the synthetic noise model with a
// real co-running workload on a shared cache hierarchy (vm.CoExec): the
// streaming neighbour displaces probe lines mid-scan, and the voting
// receiver restores the leak.
func BenchmarkAblationCoTenant(b *testing.B) {
	secret := "ABCDEFGH"
	neighbour := mibench.Stream(1000)
	for _, tc := range []struct {
		name   string
		rounds int
	}{
		{"co_r1", 1},
		{"co_r7", 7},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := experiments.DefaultConfig()
			cfg.Secret = secret
			for i := 0; i < b.N; i++ {
				m, err := experiments.RunStandaloneCoTenant(cfg, experiments.AttackSpec{
					Variant: spectre.V1BoundsCheck,
					Rounds:  tc.rounds,
				}, neighbour, 64, 1)
				if err != nil {
					b.Fatal(err)
				}
				out := m.Output.String()
				ok := 0
				for j := 0; j < len(out) && j < len(secret); j++ {
					if out[j] == secret[j] {
						ok++
					}
				}
				b.ReportMetric(float64(ok), "bytes_correct")
			}
		})
	}
}

// BenchmarkAblationPrefetcher toggles the next-line prefetcher: it must
// speed the streaming workload (IPC up) while leaving the flush+reload
// channel intact (the probe stride defeats next-line prediction).
func BenchmarkAblationPrefetcher(b *testing.B) {
	for _, pf := range []bool{false, true} {
		name := "off"
		if pf {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			coreCfg := cpu.DefaultConfig()
			coreCfg.NextLinePrefetch = pf
			// Line-by-line streaming (stride 64): the pattern next-line
			// prefetching accelerates.
			w := mibench.StreamStride("stream64", 3, 64)
			mod, err := w.HostModule(rop.HostOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				mc := vm.DefaultConfig()
				mc.CPU = coreCfg
				m := vm.New(mc)
				m.Register("w", mod, 0x100000)
				if err := m.Exec("w", []byte("x"), 1<<32); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.CPU.IPC(), "stream_ipc")
				rec, _ := leakRate(b, coreCfg, "ABCDEFGH")
				b.ReportMetric(float64(rec), "bytes_leaked")
			}
		})
	}
}

// BenchmarkAblationPredictor compares the PHT and gshare conditional
// predictors against the naive looped trainer and the history-smashed
// trainer: gshare blocks the former and falls to the latter.
func BenchmarkAblationPredictor(b *testing.B) {
	cases := []struct {
		name    string
		pred    string
		matched bool
	}{
		{"pht_looped", "pht", false},
		{"gshare_looped", "gshare", false},
		{"gshare_history_matched", "gshare", true},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			coreCfg := cpu.DefaultConfig()
			coreCfg.Predictor = tc.pred
			cfg := experiments.DefaultConfig()
			cfg.Secret = "ABCDEFGH"
			cfg.CPU = coreCfg
			for i := 0; i < b.N; i++ {
				_, m, err := experiments.RunStandalone(cfg, experiments.AttackSpec{
					Variant: spectre.V1BoundsCheck, HistoryMatched: tc.matched,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				out := m.Output.String()
				ok := 0
				for j := 0; j < len(out) && j < len(cfg.Secret); j++ {
					if out[j] == cfg.Secret[j] {
						ok++
					}
				}
				b.ReportMetric(float64(ok), "bytes_leaked")
			}
		})
	}
}

// BenchmarkAblationSamplingInterval sweeps the PMU sampling period:
// coarser sampling dilutes the attack's per-interval signature (fewer,
// blurrier samples), trading detector accuracy against monitoring
// overhead — the runtime-monitoring constraint behind the paper's
// feature-size choice.
func BenchmarkAblationSamplingInterval(b *testing.B) {
	for _, interval := range []uint64{5_000, 20_000, 80_000} {
		interval := interval
		b.Run("iv"+itoa(int(interval)), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Interval = interval
			cfg.Attempts = 2
			cfg.Classifiers = []string{"mlp"}
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig5(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*experiments.MeanAccuracy(res.Plain), "spectre_%")
				b.ReportMetric(100*experiments.MeanAccuracy(res.CR), "crspectre_%")
			}
		})
	}
}
