package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// diagnostic is one finding, positioned for file:line:col rendering.
type diagnostic struct {
	pos token.Pos
	msg string
}

// guestFacing lists the packages modelling guest-visible
// micro-architecture. Their behaviour must be a pure function of guest
// state and the seeded configuration — host entropy (the wall clock,
// math/rand) would break run-to-run determinism and the differential
// oracle.
var guestFacing = map[string]bool{
	"repro/internal/cpu":    true,
	"repro/internal/cache":  true,
	"repro/internal/mem":    true,
	"repro/internal/branch": true,
	"repro/internal/isa":    true,
}

// guardedDirective marks a function whose callers maintain the
// recorder-non-nil invariant (outlined emit helpers, traced slow
// paths), suppressing the in-function guard requirement.
const guardedDirective = "crspectrevet:guarded"

// recorderPath is the telemetry package; its Recorder methods are not
// nil-safe, so every call site outside the package needs a guard.
const recorderPath = "repro/internal/telemetry"

// checkEmitGuards enforces the telemetry hook convention: every call to
// (*telemetry.Recorder).Emit — and to the cpu core's outlined telEmit
// wrapper — must be dominated by a nil check of the recorder. Accepted
// guards, matching the repo's three idioms:
//
//	if rec != nil { rec.Emit(...) }              // enclosing condition
//	if a < b && c.tel != nil { c.telEmit(...) }  // conjunct condition
//	if rec == nil { return }; ...; rec.Emit(...) // early return
//
// Functions carrying a "crspectrevet:guarded" directive in their doc
// comment declare the invariant caller-maintained and are skipped, as
// are test files and the telemetry package itself.
func checkEmitGuards(fset *token.FileSet, files []*ast.File, info *types.Info, pkgPath string) []diagnostic {
	if pkgPath == recorderPath || strings.HasSuffix(pkgPath, "_test") ||
		strings.HasSuffix(pkgPath, ".test") {
		return nil
	}
	var diags []diagnostic
	for _, f := range files {
		if strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if call, ok := n.(*ast.CallExpr); ok {
				if guardExpr, site := emitSite(info, call); site != "" && !isGuarded(stack, call, guardExpr) {
					diags = append(diags, diagnostic{
						pos: call.Pos(),
						msg: site + " call not nil-guarded: dominate it with \"" +
							guardExpr + " != nil\" (or mark the function " + guardedDirective + ")",
					})
				}
			}
			return true
		})
	}
	return diags
}

// emitSite classifies a call as a telemetry hook needing a guard. It
// returns the expression that must be nil-checked and a description, or
// "" when the call is not a hook.
func emitSite(info *types.Info, call *ast.CallExpr) (guardExpr, site string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Emit":
		if !isRecorder(info, sel.X) {
			return "", ""
		}
		return types.ExprString(sel.X), "telemetry.Recorder.Emit"
	case "telEmit":
		// The core's outlined wrapper dereferences c.tel unchecked by
		// design; the check moves to its call sites.
		return types.ExprString(sel.X) + ".tel", "cpu telEmit"
	}
	return "", ""
}

// isRecorder reports whether e's static type is telemetry.Recorder (or
// a pointer to it).
func isRecorder(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Recorder" && obj.Pkg() != nil && obj.Pkg().Path() == recorderPath
}

// isGuarded reports whether the call at the end of path is dominated by
// a nil check of guardExpr under the accepted idioms.
func isGuarded(path []ast.Node, call *ast.CallExpr, guardExpr string) bool {
	var enclosing ast.Node // nearest enclosing function
	for i := len(path) - 1; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.IfStmt:
			if condMentionsNotNil(n, guardExpr) {
				return true
			}
		case *ast.FuncDecl:
			if enclosing == nil {
				enclosing = n
			}
			if hasGuardedDirective(n.Doc) {
				return true
			}
		case *ast.FuncLit:
			if enclosing == nil {
				enclosing = n
			}
		}
	}
	// Early-return idiom: a preceding "if guardExpr == nil { ... return }"
	// anywhere in the nearest enclosing function.
	var body *ast.BlockStmt
	switch fn := enclosing.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	default:
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.End() > call.Pos() {
			return true
		}
		if condTextIs(ifs.Cond, guardExpr+" == nil") && endsInReturn(ifs.Body) {
			found = true
			return false
		}
		return true
	})
	return found
}

// condMentionsNotNil reports whether the if's condition (or its init
// statement's condition form) contains "guardExpr != nil" as a
// conjunct-level phrase.
func condMentionsNotNil(ifs *ast.IfStmt, guardExpr string) bool {
	want := guardExpr + " != nil"
	if strings.Contains(types.ExprString(ifs.Cond), want) {
		return true
	}
	// "if x := recv(); x != nil" where the hook uses x: the direct
	// comparison above already matches, since guardExpr is then "x".
	return false
}

func condTextIs(cond ast.Expr, want string) bool {
	return types.ExprString(cond) == want
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

func hasGuardedDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, guardedDirective) {
			return true
		}
	}
	return false
}

// checkKindRegistry keeps the telemetry event taxonomy closed under
// name resolution: every Kind constant (the Kind* iota block in the
// telemetry package) must appear as a key of the kindNames table with a
// non-empty wire name. A kind missing from the table still emits fine,
// but KindByName, the exporters and the obs event-stream filter all
// resolve through kindNames, so the event class would silently vanish
// from every artifact. Runs only on the telemetry package itself; the
// NumKinds sentinel is exempt by its name.
func checkKindRegistry(fset *token.FileSet, files []*ast.File, pkgPath string) []diagnostic {
	if pkgPath != recorderPath {
		return nil
	}
	type kindConst struct {
		name string
		pos  token.Pos
	}
	var consts []kindConst
	registered := map[string]bool{} // key present with a non-empty name
	empty := map[string]token.Pos{} // key present but mapped to ""
	for _, f := range files {
		if strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				// Track the implied type through the iota block: a spec
				// with an explicit type sets it, bare continuation specs
				// inherit it, and an untyped spec with its own value
				// leaves the Kind block.
				inKindBlock := false
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil {
						id, ok := vs.Type.(*ast.Ident)
						inKindBlock = ok && id.Name == "Kind"
					} else if len(vs.Values) > 0 {
						inKindBlock = false
					}
					if !inKindBlock {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Kind") {
							consts = append(consts, kindConst{name.Name, name.Pos()})
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "kindNames" || i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						for _, elt := range cl.Elts {
							kv, ok := elt.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							key, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							if lit, ok := kv.Value.(*ast.BasicLit); ok &&
								lit.Kind == token.STRING && lit.Value != `""` && lit.Value != "``" {
								registered[key.Name] = true
							} else {
								empty[key.Name] = kv.Pos()
							}
						}
					}
				}
			}
		}
	}
	var diags []diagnostic
	for _, c := range consts {
		if registered[c.name] {
			continue
		}
		if pos, ok := empty[c.name]; ok {
			diags = append(diags, diagnostic{
				pos: pos,
				msg: "telemetry Kind " + c.name + " maps to an empty wire name in kindNames; KindByName cannot resolve it",
			})
			continue
		}
		diags = append(diags, diagnostic{
			pos: c.pos,
			msg: "telemetry Kind " + c.name + " is not registered in kindNames; KindByName and the exporters will silently drop it",
		})
	}
	return diags
}

// checkDeterminism bans host entropy from guest-facing packages: no
// math/rand import at all, and no wall-clock reads (time.Now/Since/
// Until) even if the time package is otherwise imported for durations.
func checkDeterminism(fset *token.FileSet, files []*ast.File, pkgPath string) []diagnostic {
	if !guestFacing[pkgPath] {
		return nil
	}
	var diags []diagnostic
	for _, f := range files {
		if strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go") {
			continue
		}
		timeNames := map[string]bool{}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			switch p {
			case "math/rand", "math/rand/v2":
				diags = append(diags, diagnostic{
					pos: imp.Pos(),
					msg: "guest-facing package imports " + p +
						"; derive randomness from seeded guest state (sched.DeriveSeed) instead",
				})
			case "time":
				name := "time"
				if imp.Name != nil {
					name = imp.Name.Name
				}
				timeNames[name] = true
			}
		}
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				diags = append(diags, diagnostic{
					pos: call.Pos(),
					msg: "wall-clock read (" + id.Name + "." + sel.Sel.Name +
						") in guest-facing package breaks simulation determinism",
				})
			}
			return true
		})
	}
	return diags
}
