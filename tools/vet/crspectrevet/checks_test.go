package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The fixture telemetry package: same import path and (not nil-safe)
// Emit shape as the real one, so the type-directed matching is
// exercised for real.
const telemetryFixture = `package telemetry
type Event struct{ Kind int }
type Recorder struct{ n int }
func (r *Recorder) Emit(ev Event) { r.n++ }
`

// fixtureImporter type-checks dependency fixtures from source.
type fixtureImporter struct {
	fset *token.FileSet
	srcs map[string]string
	pkgs map[string]*types.Package
}

func (m *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	src, ok := m.srcs[path]
	if !ok {
		return nil, fmt.Errorf("no fixture for %q", path)
	}
	f, err := parser.ParseFile(m.fset, path+"/fixture.go", src, 0)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{Importer: m}
	p, err := cfg.Check(path, m.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, err
	}
	m.pkgs[path] = p
	return p, nil
}

// check parses and type-checks src as one file of pkgPath and runs both
// passes over it.
func check(t *testing.T, pkgPath, filename, src string) []diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	imp := &fixtureImporter{
		fset: fset,
		srcs: map[string]string{recorderPath: telemetryFixture},
		pkgs: map[string]*types.Package{},
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	cfg := types.Config{Importer: imp, Error: func(error) {}}
	cfg.Check(pkgPath, fset, []*ast.File{f}, info)
	diags := checkEmitGuards(fset, []*ast.File{f}, info, pkgPath)
	diags = append(diags, checkDeterminism(fset, []*ast.File{f}, pkgPath)...)
	return append(diags, checkKindRegistry(fset, []*ast.File{f}, pkgPath)...)
}

func wantDiags(t *testing.T, diags []diagnostic, substrs ...string) {
	t.Helper()
	if len(diags) != len(substrs) {
		t.Fatalf("got %d diagnostics, want %d: %+v", len(diags), len(substrs), diags)
	}
	for i, want := range substrs {
		if !strings.Contains(diags[i].msg, want) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].msg, want)
		}
	}
}

const emitPrologue = `package p
import telemetry "repro/internal/telemetry"
`

func TestEmitGuardEnclosingIf(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
func f(rec *telemetry.Recorder) {
	if rec != nil {
		rec.Emit(telemetry.Event{})
	}
}
`))
}

func TestEmitGuardConjunct(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
type C struct{ tel *telemetry.Recorder; n int }
func (c *C) f() {
	if c.n > 4 && c.tel != nil {
		c.tel.Emit(telemetry.Event{})
	}
}
`))
}

func TestEmitGuardEarlyReturn(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
func f(rec *telemetry.Recorder) {
	if rec == nil {
		return
	}
	rec.Emit(telemetry.Event{})
}
`))
}

func TestEmitGuardInitAssign(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
type C struct{ r *telemetry.Recorder }
func (c *C) Telemetry() *telemetry.Recorder { return c.r }
func f(c *C) {
	if tel := c.Telemetry(); tel != nil {
		tel.Emit(telemetry.Event{})
	}
}
`))
}

func TestEmitUnguardedFlagged(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
func f(rec *telemetry.Recorder) {
	rec.Emit(telemetry.Event{})
}
`), "telemetry.Recorder.Emit call not nil-guarded")
}

func TestEmitWrongGuardFlagged(t *testing.T) {
	// A nil check of a different expression does not count.
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
type C struct{ a, b *telemetry.Recorder }
func (c *C) f() {
	if c.a != nil {
		c.b.Emit(telemetry.Event{})
	}
}
`), "telemetry.Recorder.Emit call not nil-guarded")
}

func TestEmitDirectiveSuppresses(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
// f is an outlined hook; callers guarantee rec != nil.
//
//crspectrevet:guarded
func f(rec *telemetry.Recorder) {
	rec.Emit(telemetry.Event{})
}
`))
}

func TestEmitOtherTypesIgnored(t *testing.T) {
	// A method that happens to be called Emit on a non-Recorder type is
	// out of scope.
	wantDiags(t, check(t, "repro/internal/p", "p.go", `package p
type Plan struct{}
func (p *Plan) Emit(x int) {}
func f(p *Plan) { p.Emit(1) }
`))
}

func TestEmitTestFilesSkipped(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p_test.go", emitPrologue+`
func f(rec *telemetry.Recorder) {
	rec.Emit(telemetry.Event{})
}
`))
}

func TestEmitTelemetryPackageSkipped(t *testing.T) {
	wantDiags(t, check(t, recorderPath, "extra.go", `package telemetry
type Event2 struct{ Kind int }
`))
}

func TestTelEmitGuarded(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
type CPU struct{ tel *telemetry.Recorder }
//crspectrevet:guarded
func (c *CPU) telEmit(k int) { c.tel.Emit(telemetry.Event{Kind: k}) }
func (c *CPU) step() {
	if c.tel != nil {
		c.telEmit(3)
	}
}
`))
}

func TestTelEmitUnguardedFlagged(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/p", "p.go", emitPrologue+`
type CPU struct{ tel *telemetry.Recorder }
//crspectrevet:guarded
func (c *CPU) telEmit(k int) { c.tel.Emit(telemetry.Event{Kind: k}) }
func (c *CPU) step() {
	c.telEmit(3)
}
`), "cpu telEmit call not nil-guarded")
}

func TestDeterminismRandImport(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/cpu", "x.go", `package cpu
import "math/rand"
var r = rand.Int
`), "imports math/rand")
}

func TestDeterminismWallClock(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/cache", "x.go", `package cache
import "time"
func f() int64 { return time.Now().UnixNano() }
`), "wall-clock read (time.Now)")
}

func TestDeterminismDurationsAllowed(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/isa", "x.go", `package isa
import "time"
const tick = 3 * time.Millisecond
func f(d time.Duration) bool { return d > tick }
`))
}

// kindPrologue mirrors the real telemetry package's taxonomy shape: an
// iota block of Kind constants closed by the NumKinds sentinel, plus
// the kindNames registration table.
const kindPrologue = `package telemetry
type Kind uint8
const (
	KindAlpha Kind = iota
	KindBeta
	KindGamma
	NumKinds
)
`

func TestKindRegistryClean(t *testing.T) {
	wantDiags(t, check(t, recorderPath, "telemetry.go", kindPrologue+`
var kindNames = [NumKinds]string{
	KindAlpha: "alpha",
	KindBeta:  "beta",
	KindGamma: "gamma",
}
`))
}

func TestKindRegistryMissingFlagged(t *testing.T) {
	wantDiags(t, check(t, recorderPath, "telemetry.go", kindPrologue+`
var kindNames = [NumKinds]string{
	KindAlpha: "alpha",
	KindGamma: "gamma",
}
`), "KindBeta is not registered in kindNames")
}

func TestKindRegistryEmptyNameFlagged(t *testing.T) {
	wantDiags(t, check(t, recorderPath, "telemetry.go", kindPrologue+`
var kindNames = [NumKinds]string{
	KindAlpha: "alpha",
	KindBeta:  "",
	KindGamma: "gamma",
}
`), "KindBeta maps to an empty wire name")
}

func TestKindRegistryMissingTableFlagsAll(t *testing.T) {
	// No kindNames table at all: every Kind constant is unresolvable.
	wantDiags(t, check(t, recorderPath, "telemetry.go", kindPrologue),
		"KindAlpha is not registered in kindNames",
		"KindBeta is not registered in kindNames",
		"KindGamma is not registered in kindNames")
}

func TestKindRegistryOtherConstsIgnored(t *testing.T) {
	// Non-Kind consts — even Kind-prefixed ones of another type — and
	// untyped members of the same block are out of scope.
	wantDiags(t, check(t, recorderPath, "telemetry.go", kindPrologue+`
const (
	KindRegistryVersion int = iota + 10
	DefaultCapacity
)
var kindNames = [NumKinds]string{
	KindAlpha: "alpha",
	KindBeta:  "beta",
	KindGamma: "gamma",
}
`))
}

func TestKindRegistryOtherPackagesSkipped(t *testing.T) {
	// The taxonomy convention is local to the telemetry package.
	wantDiags(t, check(t, "repro/internal/p", "p.go", `package p
type Kind uint8
const (
	KindOther Kind = iota
	NumKinds
)
`))
}

func TestDeterminismNonGuestPackageFree(t *testing.T) {
	wantDiags(t, check(t, "repro/internal/progen", "x.go", `package progen
import ("math/rand"; "time")
func f() int64 { return rand.Int63() + time.Now().Unix() }
`))
}
