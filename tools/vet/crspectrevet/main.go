// Command crspectrevet is this repository's custom vet pass, run in CI
// via "go vet -vettool=$(which crspectrevet) ./...". It enforces two
// repo conventions the standard vet suite cannot know about:
//
//   - telemetry hooks are nil-guarded: (*telemetry.Recorder).Emit and
//     the cpu core's outlined telEmit wrapper must be dominated by a
//     recorder nil check at every call site (the recorder is not a
//     nil-safe sink, and a hook that panics when telemetry is off is a
//     latent production bug);
//
//   - guest-facing packages (cpu, cache, mem, branch, isa) never read
//     host entropy: no math/rand import, no time.Now/Since/Until. The
//     simulator's determinism contract — identical trace for identical
//     seed — is load-bearing for the differential oracle and the
//     static/dynamic agreement harness.
//
// The command speaks cmd/go's vettool protocol directly (-V=full
// version handshake, -flags enumeration, a JSON vet.cfg as the sole
// argument) with no dependencies outside the standard library, so it
// builds in the hermetic CI container.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// vetConfig mirrors the fields of cmd/go's vet.cfg this tool consumes.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
		return
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		return
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unit(args[0]))
	default:
		fmt.Fprintf(os.Stderr, "usage: crspectrevet [-V=full | -flags | vet.cfg]\n")
		os.Exit(2)
	}
}

// printVersion answers cmd/go's tool-identity handshake: the content
// hash of the executable serves as the build ID that keys vet's result
// cache.
func printVersion() {
	exe := os.Args[0]
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

func unit(cfgPath string) int {
	blob, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(blob, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "crspectrevet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver expects the facts file to exist even though this tool
	// exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("crspectrevet: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	tcfg := types.Config{
		Importer: imp,
		Error:    func(error) {}, // keep going; partial type info suffices
	}
	if _, err := tcfg.Check(cfg.ImportPath, fset, files, info); err != nil && !cfg.SucceedOnTypecheckFailure {
		// Partial information is still usable for both checks; only a
		// total parse failure above is fatal. Typecheck noise (e.g. from
		// vendored build tags) must not fail the build.
		_ = err
	}

	diags := checkEmitGuards(fset, files, info, cfg.ImportPath)
	diags = append(diags, checkDeterminism(fset, files, cfg.ImportPath)...)
	diags = append(diags, checkKindRegistry(fset, files, cfg.ImportPath)...)
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].pos < diags[j].pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.pos), d.msg)
	}
	return 2
}
