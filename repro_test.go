package repro

import (
	"testing"
)

func TestRunAttackEndToEnd(t *testing.T) {
	rep, err := RunAttack(AttackOptions{
		Host:    "math",
		Variant: "v1-bounds-check",
		Secret:  "TOPSECRET",
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Injected {
		t.Error("ROP injection did not happen")
	}
	if !rep.SecretCorrect {
		t.Errorf("recovered %q, want TOPSECRET", rep.Recovered)
	}
	if !rep.HostCompleted {
		t.Error("host workload did not complete under the cloak")
	}
	if rep.GadgetsFound == 0 || rep.ChainWords == 0 {
		t.Errorf("gadget bookkeeping empty: %d gadgets, %d chain words", rep.GadgetsFound, rep.ChainWords)
	}
	if rep.IPC <= 0 || rep.Samples == 0 {
		t.Errorf("profiling missing: ipc=%v samples=%d", rep.IPC, rep.Samples)
	}
}

func TestRunAttackAllVariants(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v, func(t *testing.T) {
			t.Parallel()
			rep, err := RunAttack(AttackOptions{Variant: v, Secret: "S3CRET", Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.SecretCorrect {
				t.Errorf("variant %s recovered %q", v, rep.Recovered)
			}
		})
	}
}

func TestRunAttackWithDetector(t *testing.T) {
	rep, err := RunAttack(AttackOptions{
		Secret:    "S3CRET",
		Perturbed: true,
		Detector:  "lr",
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectorName != "lr" {
		t.Error("detector not recorded")
	}
	if rep.DetectionRate < 0 || rep.DetectionRate > 1 {
		t.Errorf("detection rate %v out of range", rep.DetectionRate)
	}
	if rep.DetectorVerdict == "" {
		t.Error("verdict missing")
	}
}

func TestRunAttackRejectsUnknowns(t *testing.T) {
	if _, err := RunAttack(AttackOptions{Variant: "bogus"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := RunAttack(AttackOptions{Host: "bogus"}); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := RunAttack(AttackOptions{Detector: "bogus"}); err == nil {
		t.Error("unknown detector accepted")
	}
}

func TestWorkloadsAndVariantsLists(t *testing.T) {
	if len(Variants()) != 4 {
		t.Errorf("variants = %v", Variants())
	}
	ws := Workloads()
	if len(ws) < 10 {
		t.Errorf("workloads = %v", ws)
	}
	found := map[string]bool{}
	for _, w := range ws {
		found[w] = true
	}
	for _, want := range []string{"math", "bitcount_50M", "sha_1", "editor"} {
		if !found[want] {
			t.Errorf("workload list missing %q", want)
		}
	}
}

func TestExperimentFacadeSmall(t *testing.T) {
	o := Options{
		SamplesPerClass: 60,
		Attempts:        2,
		Secret:          "ABCD",
		Classifiers:     []string{"lr"},
		Seed:            2,
		Interval:        10_000,
	}
	rows, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("Fig4 empty")
	}
	res, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plain) != 2 || len(res.CR) != 2 {
		t.Errorf("Fig5 panels sized %d/%d", len(res.Plain), len(res.CR))
	}
	res6, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res6.Online {
		t.Error("Fig6 not online")
	}
}

func TestFacadeExtensions(t *testing.T) {
	rows, err := DefenseMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Errorf("defense matrix rows = %d", len(rows))
	}
	o := Options{SamplesPerClass: 60, Secret: "ABCD", Classifiers: []string{"lr"}, Seed: 2, Interval: 10_000}
	lat, err := DetectionLatency(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 1 || len(lat[0].Trajectory) == 0 {
		t.Errorf("latency rows = %+v", lat)
	}
}
